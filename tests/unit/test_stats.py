"""Unit tests for the paired fold comparison."""

from __future__ import annotations

import pytest

from repro.baselines.knn import KNNRecommender
from repro.baselines.mpi import MPIRecommender
from repro.errors import EvaluationError
from repro.eval.cross_validation import cross_validate, kfold_indices
from repro.eval.stats import compare_gains, compare_hit_rates


@pytest.fixture
def paired_cv(small_db, small_hierarchy):
    splits = kfold_indices(len(small_db), k=4, seed=0)
    knn = cross_validate(KNNRecommender, small_db, small_hierarchy, splits=splits)
    mpi = cross_validate(MPIRecommender, small_db, small_hierarchy, splits=splits)
    return knn, mpi


class TestPairedComparison:
    def test_fields_and_direction(self, paired_cv):
        knn, mpi = paired_cv
        cmp = compare_gains(knn, mpi)
        assert cmp.metric == "gain"
        assert cmp.mean_a == pytest.approx(knn.gain)
        assert cmp.mean_b == pytest.approx(mpi.gain)
        assert cmp.mean_diff == pytest.approx(knn.gain - mpi.gain)
        assert cmp.a_wins == (knn.gain > mpi.gain)
        assert 0 <= cmp.p_value <= 1

    def test_hit_rate_variant(self, paired_cv):
        knn, mpi = paired_cv
        cmp = compare_hit_rates(knn, mpi)
        assert cmp.metric == "hit_rate"
        assert cmp.mean_a == pytest.approx(knn.hit_rate)

    def test_identical_systems_not_significant(self, paired_cv):
        knn, _ = paired_cv
        cmp = compare_gains(knn, knn)
        assert cmp.mean_diff == 0
        assert cmp.p_value == 1.0
        assert not cmp.significant()

    def test_symmetry(self, paired_cv):
        knn, mpi = paired_cv
        ab = compare_gains(knn, mpi)
        ba = compare_gains(mpi, knn)
        assert ab.mean_diff == pytest.approx(-ba.mean_diff)
        assert ab.p_value == pytest.approx(ba.p_value)

    def test_mismatched_folds_rejected(self, small_db, small_hierarchy):
        a = cross_validate(
            KNNRecommender,
            small_db,
            small_hierarchy,
            splits=kfold_indices(len(small_db), k=3, seed=0),
        )
        b = cross_validate(
            MPIRecommender,
            small_db,
            small_hierarchy,
            splits=kfold_indices(len(small_db), k=4, seed=0),
        )
        with pytest.raises(EvaluationError, match="folds"):
            compare_gains(a, b)

    def test_describe(self, paired_cv):
        knn, mpi = paired_cv
        text = compare_gains(knn, mpi).describe()
        assert "kNN" in text and "MPI" in text and "p=" in text
