"""Quality gates on the public API surface.

Every name exported through ``__all__`` must resolve, and every public
module, class and function must carry a docstring — the paper reproduction
is meant to be read.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.baselines.decision_tree",
    "repro.baselines.knn",
    "repro.baselines.mpi",
    "repro.campaign",
    "repro.cli",
    "repro.core",
    "repro.core.covering",
    "repro.core.engine",
    "repro.core.engine.compiled",
    "repro.core.engine.kernel",
    "repro.core.engine.store",
    "repro.core.engine.symbols",
    "repro.core.fpgrowth",
    "repro.core.generalized",
    "repro.core.hierarchy",
    "repro.core.index_cache",
    "repro.core.items",
    "repro.core.miner",
    "repro.core.mining",
    "repro.core.mining_reference",
    "repro.core.moa",
    "repro.core.mpf",
    "repro.core.partition",
    "repro.core.pessimistic",
    "repro.core.profit",
    "repro.core.promotion",
    "repro.core.pruning",
    "repro.core.recommender",
    "repro.core.rule_index",
    "repro.core.rulestore",
    "repro.core.rules",
    "repro.core.sales",
    "repro.data",
    "repro.data.datasets",
    "repro.data.hierarchy_gen",
    "repro.data.io",
    "repro.data.model_io",
    "repro.data.packs",
    "repro.data.pricing",
    "repro.data.quest",
    "repro.errors",
    "repro.eval",
    "repro.eval.behavior",
    "repro.eval.cross_validation",
    "repro.eval.experiments",
    "repro.eval.harness",
    "repro.eval.metrics",
    "repro.eval.report",
    "repro.eval.reporting",
    "repro.eval.stats",
    "repro.obs",
    "repro.obs.trace",
    "repro.serve",
    "repro.serve.daemon",
    "repro.serve.http",
    "repro.serve.pool",
    "repro.whatif",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} is missing a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


def test_no_unlisted_submodules():
    """Every repro submodule is in the checked list (keeps this test honest)."""
    found = {"repro"}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        found.add(info.name)
    assert found <= set(MODULES) | {"repro.data.io"}, sorted(
        found - set(MODULES)
    )


@pytest.mark.parametrize("module_name", [m for m in MODULES if m != "repro"])
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__ != module_name:
                continue  # re-export; documented at its home module
            assert obj.__doc__, f"{module_name}.{name} is missing a docstring"
            if inspect.isclass(obj):
                for method_name, method in inspect.getmembers(
                    obj, inspect.isfunction
                ):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    assert method.__doc__, (
                        f"{module_name}.{name}.{method_name} missing docstring"
                    )
