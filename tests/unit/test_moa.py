"""Unit tests for MOA(H) generalization semantics (Definitions 2–3)."""

from __future__ import annotations

import pytest

from repro.core.generalized import GSale
from repro.core.moa import MOAHierarchy
from repro.core.sales import Sale
from repro.errors import ValidationError


class TestSaleGeneralization:
    def test_nontarget_sale_lifts_to_promos_item_concepts(self, small_moa):
        gsales = small_moa.generalizations_of_sale(Sale("Bread", "P2"))
        assert gsales == {
            GSale.promo_form("Bread", "P1"),  # more favorable price
            GSale.promo_form("Bread", "P2"),  # the sale itself
            GSale.item("Bread"),
            GSale.concept("Grocery"),
        }

    def test_most_favorable_code_lifts_only_to_itself(self, small_moa):
        gsales = small_moa.generalizations_of_sale(Sale("Bread", "P1"))
        assert GSale.promo_form("Bread", "P2") not in gsales
        assert GSale.promo_form("Bread", "P1") in gsales

    def test_without_moa_only_exact_promo(
        self, small_catalog, small_hierarchy
    ):
        plain = MOAHierarchy(small_catalog, small_hierarchy, use_moa=False)
        gsales = plain.generalizations_of_sale(Sale("Bread", "P2"))
        assert GSale.promo_form("Bread", "P1") not in gsales
        assert GSale.promo_form("Bread", "P2") in gsales
        assert GSale.item("Bread") in gsales
        assert GSale.concept("Grocery") in gsales

    def test_target_sale_rejected(self, small_moa):
        with pytest.raises(ValidationError, match="target"):
            small_moa.generalizations_of_sale(Sale("Sunchip", "L"))

    def test_equivalent_codes_do_not_inter_generalize(self):
        # Two codes with identical customer terms (price and packing) but
        # different ids — e.g. different seller costs — are distinct offers:
        # a sale at one must not lift to the other.  This keeps membership
        # in a generalization set consistent with MOA(H) subsumption, which
        # is strict.
        from repro.core.hierarchy import ConceptHierarchy
        from repro.core.items import Item, ItemCatalog
        from repro.core.promotion import PromotionCode

        catalog = ItemCatalog.from_items(
            [
                Item(
                    "Soap",
                    (
                        PromotionCode("A", price=2.0, cost=1.0),
                        PromotionCode("B", price=2.0, cost=0.5),
                    ),
                ),
                Item(
                    "Gem", (PromotionCode("G", 9.0, 5.0),), is_target=True
                ),
            ]
        )
        hierarchy = ConceptHierarchy.for_catalog(catalog, {})
        moa = MOAHierarchy(catalog, hierarchy, use_moa=True)
        gsales = moa.generalizations_of_sale(Sale("Soap", "A"))
        assert GSale.promo_form("Soap", "A") in gsales
        assert GSale.promo_form("Soap", "B") not in gsales
        # Every lifted generalization is subsumption-consistent.
        exact = GSale.promo_form("Soap", "A")
        assert all(moa.generalizes_or_equal(g, exact) for g in gsales)

    def test_basket_union(self, small_moa):
        combined = small_moa.generalizations_of_basket(
            [Sale("Bread", "P1"), Sale("Perfume", "P1")]
        )
        assert GSale.concept("Grocery") in combined
        assert GSale.concept("Beauty") in combined


class TestTargetHeads:
    def test_heads_are_favorable_or_equal_codes(self, small_moa):
        heads = small_moa.target_heads_of_sale(Sale("Sunchip", "M"))
        assert heads == {
            GSale.promo_form("Sunchip", "L"),
            GSale.promo_form("Sunchip", "M"),
        }

    def test_hit_semantics(self, small_moa):
        cheapest = GSale.promo_form("Sunchip", "L")
        priciest = GSale.promo_form("Sunchip", "H")
        assert small_moa.hits(cheapest, Sale("Sunchip", "H"))
        assert not small_moa.hits(priciest, Sale("Sunchip", "L"))
        assert not small_moa.hits(cheapest, Sale("Diamond", "D"))

    def test_hit_requires_promo_form(self, small_moa):
        with pytest.raises(ValidationError, match="promo-form"):
            small_moa.hits(GSale.item("Sunchip"), Sale("Sunchip", "L"))

    def test_without_moa_exact_match_only(self, small_catalog, small_hierarchy):
        plain = MOAHierarchy(small_catalog, small_hierarchy, use_moa=False)
        assert plain.hits(GSale.promo_form("Sunchip", "M"), Sale("Sunchip", "M"))
        assert not plain.hits(
            GSale.promo_form("Sunchip", "L"), Sale("Sunchip", "M")
        )

    def test_nontarget_rejected(self, small_moa):
        with pytest.raises(ValidationError, match="not a target"):
            small_moa.target_heads_of_sale(Sale("Bread", "P1"))

    def test_all_candidate_heads(self, small_moa):
        heads = small_moa.all_candidate_heads()
        assert len(heads) == 3 + 1  # 3 Sunchip codes + 1 Diamond code


class TestSubsumption:
    def test_concept_subsumes_item_and_promos(self, small_moa):
        grocery = GSale.concept("Grocery")
        assert small_moa.strictly_generalizes(grocery, GSale.item("Bread"))
        assert small_moa.strictly_generalizes(
            grocery, GSale.promo_form("Bread", "P2")
        )

    def test_item_subsumes_own_promos_only(self, small_moa):
        bread = GSale.item("Bread")
        assert small_moa.strictly_generalizes(bread, GSale.promo_form("Bread", "P1"))
        assert not small_moa.strictly_generalizes(
            bread, GSale.promo_form("Perfume", "P1")
        )

    def test_promo_subsumes_less_favorable_promo_with_moa(self, small_moa):
        cheap = GSale.promo_form("Bread", "P1")
        dear = GSale.promo_form("Bread", "P2")
        assert small_moa.strictly_generalizes(cheap, dear)
        assert not small_moa.strictly_generalizes(dear, cheap)

    def test_promo_subsumption_disabled_without_moa(
        self, small_catalog, small_hierarchy
    ):
        plain = MOAHierarchy(small_catalog, small_hierarchy, use_moa=False)
        assert not plain.strictly_generalizes(
            GSale.promo_form("Bread", "P1"), GSale.promo_form("Bread", "P2")
        )
        # the item still subsumes the promo forms
        assert plain.strictly_generalizes(
            GSale.item("Bread"), GSale.promo_form("Bread", "P2")
        )

    def test_strictness(self, small_moa):
        g = GSale.item("Bread")
        assert not small_moa.strictly_generalizes(g, g)
        assert small_moa.generalizes_or_equal(g, g)

    def test_closure_and_body_generalizes(self, small_moa):
        specific = {GSale.promo_form("Bread", "P2")}
        closure = small_moa.closure(specific)
        assert GSale.concept("Grocery") in closure
        assert small_moa.body_generalizes({GSale.item("Bread")}, specific)
        assert small_moa.body_generalizes(set(), specific)  # empty body
        assert not small_moa.body_generalizes(
            {GSale.item("Perfume")}, specific
        )

    def test_is_ancestor_free(self, small_moa):
        ok = {GSale.item("Bread"), GSale.item("Perfume")}
        assert small_moa.is_ancestor_free(ok)
        bad = {GSale.item("Bread"), GSale.promo_form("Bread", "P1")}
        assert not small_moa.is_ancestor_free(bad)
        assert small_moa.is_ancestor_free(set())


class TestMatchingSemanticsConsistency:
    def test_generalization_set_equals_subsumption(self, small_moa):
        """g ∈ generalizations(sale) ⟺ g subsumes the sale's exact form.

        The miner relies on this equivalence to reduce body matching to a
        subset test against extended transactions.
        """
        sale = Sale("Bread", "P2")
        exact = GSale.promo_form("Bread", "P2")
        lifted = small_moa.generalizations_of_sale(sale)
        for g in lifted:
            assert small_moa.generalizes_or_equal(g, exact)
        for g in small_moa.closure({exact}):
            assert g in lifted


class TestDotExport:
    def test_moa_dot_structure(self, small_moa):
        from repro.core.moa import moa_to_dot

        dot = moa_to_dot(small_moa)
        assert dot.startswith("digraph MOAH {")
        # favorability cover edge: Bread P1 ($2) is more favorable than P2
        assert '"<Bread @ P1>" -> "<Bread @ P2>"' in dot
        # the item roots the per-item sub-hierarchy at its maximal code
        assert '"Bread" -> "<Bread @ P1>"' in dot
        assert '"Bread" -> "<Bread @ P2>"' not in dot

    def test_moa_dot_without_moa_flattens_codes(
        self, small_catalog, small_hierarchy
    ):
        from repro.core.moa import MOAHierarchy, moa_to_dot

        plain = MOAHierarchy(small_catalog, small_hierarchy, use_moa=False)
        dot = moa_to_dot(plain)
        assert '"Bread" -> "<Bread @ P2>"' in dot
        assert '"<Bread @ P1>" -> "<Bread @ P2>"' not in dot
