"""Unit tests for the profit models (saving/buying MOA, binary)."""

from __future__ import annotations

import pytest

from repro.core.generalized import GSale
from repro.core.items import Item, ItemCatalog
from repro.core.profit import (
    BinaryProfit,
    BuyingMOA,
    SavingMOA,
    profit_model_from_name,
)
from repro.core.sales import Sale
from repro.errors import ValidationError

from tests.conftest import promo


@pytest.fixture
def milk_catalog(milk_codes) -> ItemCatalog:
    return ItemCatalog.from_items(
        [
            Item("Bread", (promo("P1", 2.0, 1.0),)),
            Item("Milk", milk_codes, is_target=True),
        ]
    )


class TestSavingMOA:
    def test_keeps_units_constant(self, milk_catalog):
        # Customer bought 4 single packs at $1.2 each; recommend $1.0/pack.
        head = GSale.promo_form("Milk", "pack-lo")
        sale = Sale("Milk", "pack-hi", quantity=4)
        profit = SavingMOA().credited_profit(head, sale, milk_catalog)
        assert profit == pytest.approx((1.0 - 0.5) * 4)

    def test_cross_packing_units(self, milk_catalog):
        # Bought 1 package of 4-pack at $3.2; recommend the $3.0/4-pack.
        head = GSale.promo_form("Milk", "4pack-lo")
        sale = Sale("Milk", "4pack-hi", quantity=1)
        profit = SavingMOA().credited_profit(head, sale, milk_catalog)
        assert profit == pytest.approx(3.0 - 1.8)

    def test_paper_example_1(self, milk_catalog):
        # ⟨Milk, ($3.2/4-pack, $2), 5⟩ generates 5 × (3.2 − 2) = $6.
        head = GSale.promo_form("Milk", "4pack-hi")
        sale = Sale("Milk", "4pack-hi", quantity=5)
        assert SavingMOA().credited_profit(head, sale, milk_catalog) == (
            pytest.approx(6.0)
        )


class TestBuyingMOA:
    def test_keeps_spend_constant(self, milk_catalog):
        # Spent $4.8 on 4 packs at $1.2; at $1.0 the customer buys 4.8 packs.
        head = GSale.promo_form("Milk", "pack-lo")
        sale = Sale("Milk", "pack-hi", quantity=4)
        profit = BuyingMOA().credited_profit(head, sale, milk_catalog)
        assert profit == pytest.approx(0.5 * 4.8)

    def test_buying_credits_at_least_saving_for_nonnegative_profit(
        self, milk_catalog
    ):
        head = GSale.promo_form("Milk", "pack-lo")
        sale = Sale("Milk", "pack-hi", quantity=4)
        assert BuyingMOA().credited_profit(
            head, sale, milk_catalog
        ) >= SavingMOA().credited_profit(head, sale, milk_catalog)


class TestBinaryProfit:
    def test_every_hit_worth_one(self, milk_catalog):
        head = GSale.promo_form("Milk", "pack-lo")
        sale = Sale("Milk", "pack-hi", quantity=7)
        assert BinaryProfit().credited_profit(head, sale, milk_catalog) == 1.0


class TestProfitDispatch:
    def test_profit_zero_on_miss(self, small_moa, small_catalog):
        head = GSale.promo_form("Sunchip", "H")
        miss = Sale("Sunchip", "L")  # recorded cheaper than recommended
        assert SavingMOA().profit(head, miss, small_moa) == 0.0

    def test_profit_credits_on_hit(self, small_moa):
        head = GSale.promo_form("Sunchip", "L")
        hit = Sale("Sunchip", "H", quantity=2)
        assert SavingMOA().profit(head, hit, small_moa) == pytest.approx(
            (3.8 - 2.0) * 2
        )

    def test_rejects_non_promo_head(self, small_moa):
        with pytest.raises(ValidationError, match="promo-form"):
            SavingMOA().profit(GSale.item("Sunchip"), Sale("Sunchip", "L"), small_moa)

    def test_registry(self):
        assert isinstance(profit_model_from_name("saving"), SavingMOA)
        assert isinstance(profit_model_from_name("buying"), BuyingMOA)
        assert isinstance(profit_model_from_name("binary"), BinaryProfit)
        with pytest.raises(ValidationError, match="unknown profit model"):
            profit_model_from_name("bogus")
