"""Unit tests for fitted-model persistence."""

from __future__ import annotations

import json

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.model_io import load_model, save_model
from repro.errors import SerializationError


@pytest.fixture
def fitted(small_hierarchy, small_db):
    return ProfitMiner(
        small_hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.05, max_body_size=2)
        ),
    ).fit(small_db)


class TestRoundTrip:
    def test_recommendations_survive_round_trip(self, fitted, small_db, tmp_path):
        path = tmp_path / "model.json"
        original = fitted.require_fitted_recommender()
        save_model(original, path)
        restored = load_model(path)
        assert restored.name == original.name
        assert restored.model_size == original.model_size
        for transaction in small_db.transactions[:20]:
            basket = transaction.nontarget_sales
            a = original.recommend(basket)
            b = restored.recommend(basket)
            assert (a.item_id, a.promo_code) == (b.item_id, b.promo_code)

    def test_rules_and_stats_identical(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        original = fitted.require_fitted_recommender()
        save_model(original, path)
        restored = load_model(path)
        assert [s.rule for s in restored.ranked_rules] == [
            s.rule for s in original.ranked_rules
        ]
        assert [s.stats for s in restored.ranked_rules] == [
            s.stats for s in original.ranked_rules
        ]

    def test_moa_flag_preserved(self, small_hierarchy, small_db, tmp_path):
        miner = ProfitMiner(
            small_hierarchy,
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.05, max_body_size=1),
                use_moa=False,
            ),
        ).fit(small_db)
        path = tmp_path / "model.json"
        save_model(miner.require_fitted_recommender(), path)
        assert load_model(path).moa.use_moa is False


class TestFailureInjection:
    def test_not_json(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("{broken")
        with pytest.raises(SerializationError, match="not valid JSON"):
            load_model(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(SerializationError, match="format"):
            load_model(path)

    def test_missing_fields(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path)
        payload = json.loads(path.read_text())
        del payload["rules"][0]["head"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="malformed"):
            load_model(path)

    def test_bad_gsale_kind(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path)
        payload = json.loads(path.read_text())
        payload["rules"][0]["head"]["kind"] = "galaxy"
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError):
            load_model(path)
