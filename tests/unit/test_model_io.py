"""Unit tests for fitted-model persistence (formats v1, v2 and v3)."""

from __future__ import annotations

import json

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.model_io import WorldCache, load_model, save_model
from repro.errors import SerializationError


@pytest.fixture
def fitted(small_hierarchy, small_db):
    return ProfitMiner(
        small_hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.05, max_body_size=2)
        ),
    ).fit(small_db)


@pytest.fixture(params=[1, 2, 3], ids=["v1", "v2", "v3"])
def version(request):
    return request.param


class TestRoundTrip:
    def test_recommendations_survive_round_trip(
        self, fitted, small_db, tmp_path, version
    ):
        path = tmp_path / "model.json"
        original = fitted.require_fitted_recommender()
        save_model(original, path, version=version)
        restored = load_model(path)
        assert restored.name == original.name
        assert restored.model_size == original.model_size
        for transaction in small_db.transactions[:20]:
            basket = transaction.nontarget_sales
            a = original.recommend(basket)
            b = restored.recommend(basket)
            assert (a.item_id, a.promo_code) == (b.item_id, b.promo_code)

    def test_rules_and_stats_identical(self, fitted, tmp_path, version):
        path = tmp_path / "model.json"
        original = fitted.require_fitted_recommender()
        save_model(original, path, version=version)
        restored = load_model(path)
        assert [s.rule for s in restored.ranked_rules] == [
            s.rule for s in original.ranked_rules
        ]
        assert [s.stats for s in restored.ranked_rules] == [
            s.stats for s in original.ranked_rules
        ]

    def test_moa_flag_preserved(self, small_hierarchy, small_db, tmp_path):
        miner = ProfitMiner(
            small_hierarchy,
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.05, max_body_size=1),
                use_moa=False,
            ),
        ).fit(small_db)
        path = tmp_path / "model.json"
        save_model(miner.require_fitted_recommender(), path)
        assert load_model(path).moa.use_moa is False

    def test_unsupported_version_rejected(self, fitted, tmp_path):
        with pytest.raises(SerializationError, match="version"):
            save_model(
                fitted.require_fitted_recommender(),
                tmp_path / "model.json",
                version=4,
            )


class TestV2Format:
    def test_v3_is_the_default_and_persists_the_store(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-profit-mining-model-v3"
        assert payload["version"] == 3
        assert payload["symbols"], "v3 must persist the symbol table"
        assert set(payload["store"]) == {"default", "concept", "item", "promo"}

    def test_v2_persists_the_engine(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path, version=2)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-profit-mining-model-v2"
        assert payload["symbols"], "v2 must persist the symbol table"
        assert payload["postings"], "v2 must persist the inverted postings"

    def test_v2_load_restores_postings_without_reindexing(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        original = fitted.require_fitted_recommender()
        save_model(original, path, version=2)
        restored = load_model(path)
        # The compiled model is installed at construction — the serving
        # index wraps it rather than re-interning the rules.
        assert restored._compiled is not None
        assert restored.rule_index.compiled is restored._compiled
        assert restored.compiled.postings == original.compiled.postings
        assert restored.compiled.body_ids == original.compiled.body_ids
        assert restored.compiled.always_match == original.compiled.always_match

    def test_v2_round_trips_through_resave(self, fitted, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        save_model(fitted.require_fitted_recommender(), first, version=2)
        save_model(load_model(first), second, version=2)
        assert json.loads(first.read_text())["rules"] == (
            json.loads(second.read_text())["rules"]
        )


class TestV3Format:
    def test_v3_load_restores_the_store_without_reinterning(
        self, fitted, tmp_path
    ):
        path = tmp_path / "model.json"
        original = fitted.require_fitted_recommender()
        save_model(original, path)  # v3 default
        restored = load_model(path)
        # The compiled model is store-backed from construction: the ranked
        # sequence is the lazy view, postings/always-match come from the
        # columns, and nothing was re-interned.
        assert restored._compiled is not None
        assert restored._compiled.store is not None
        assert restored.compiled.postings == original.compiled.postings
        assert restored.compiled.always_match == original.compiled.always_match
        assert restored.compiled.body_sizes == original.compiled.body_sizes
        assert list(restored.compiled.body_ids) == list(
            original.compiled.body_ids
        )

    def test_v3_round_trips_through_resave(self, fitted, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        save_model(fitted.require_fitted_recommender(), first)
        save_model(load_model(first), second)
        assert json.loads(first.read_text())["store"] == (
            json.loads(second.read_text())["store"]
        )

    def test_world_cache_shares_one_moa_across_loads(self, fitted, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_model(fitted.require_fitted_recommender(), a)
        save_model(fitted.require_fitted_recommender(), b, version=2)
        worlds = WorldCache()
        first = load_model(a, worlds=worlds)
        second = load_model(b, worlds=worlds)
        assert len(worlds) == 1
        assert first.moa is second.moa
        assert first.compiled.symbols is second.compiled.symbols

    def test_loads_without_a_world_cache_stay_independent(
        self, fitted, tmp_path
    ):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path)
        assert load_model(path).moa is not load_model(path).moa


class TestV1Compatibility:
    """A v1 document written by the old code must keep loading."""

    def test_v1_fixture_document_loads(self, fitted, small_db, tmp_path):
        # Write the legacy format exactly as the v1 code did, then load it
        # through the transparent dispatch.
        path = tmp_path / "model_v1.json"
        original = fitted.require_fitted_recommender()
        save_model(original, path, version=1)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-profit-mining-model-v1"
        assert "symbols" not in payload and "postings" not in payload
        assert isinstance(payload["rules"][0], dict)  # string-form rules
        restored = load_model(path)
        assert restored.model_size == original.model_size
        for transaction in small_db.transactions[:20]:
            basket = transaction.nontarget_sales
            a = original.recommend(basket)
            b = restored.recommend(basket)
            assert (a.item_id, a.promo_code) == (b.item_id, b.promo_code)


class TestFailureInjection:
    def test_not_json(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("{broken")
        with pytest.raises(SerializationError, match="not valid JSON"):
            load_model(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(SerializationError, match="format"):
            load_model(path)

    def test_missing_fields_v1(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path, version=1)
        payload = json.loads(path.read_text())
        del payload["rules"][0]["head"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="malformed"):
            load_model(path)

    def test_bad_gsale_kind_v1(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path, version=1)
        payload = json.loads(path.read_text())
        payload["rules"][0]["head"]["kind"] = "galaxy"
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError):
            load_model(path)

    def test_missing_sections_v2(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path, version=2)
        payload = json.loads(path.read_text())
        del payload["postings"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="malformed"):
            load_model(path)

    def test_bad_symbol_entry_v2(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path, version=2)
        payload = json.loads(path.read_text())
        payload["symbols"][0] = ["galaxy", "Nope"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError):
            load_model(path)


class TestVersionResolution:
    """Regressions for version-field corruption in ``load_model``.

    Every artifact now stamps an integer ``version``; a missing,
    non-integer or future version must die with a
    :class:`SerializationError` naming what was seen — never a
    ``KeyError`` and never a silent misparse as some other format.
    """

    @pytest.fixture
    def saved_payload(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path)
        return path, json.loads(path.read_text())

    def test_missing_version_with_unknown_format_rejected(self, saved_payload):
        path, payload = saved_payload
        del payload["version"]
        payload["format"] = "somebody-elses-artifact"
        path.write_text(json.dumps(payload))
        with pytest.raises(
            SerializationError, match="somebody-elses-artifact"
        ):
            load_model(path)

    def test_missing_version_and_format_rejected(self, saved_payload):
        path, payload = saved_payload
        del payload["version"]
        del payload["format"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="version"):
            load_model(path)

    @pytest.mark.parametrize(
        "bad", ["3", 3.0, True, None, [3]], ids=["str", "float", "bool", "none", "list"]
    )
    def test_non_integer_version_rejected(self, saved_payload, bad):
        path, payload = saved_payload
        payload["version"] = bad
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="must be an integer"):
            load_model(path)

    def test_future_version_rejected_naming_it(self, saved_payload):
        path, payload = saved_payload
        payload["version"] = 99
        del payload["format"]  # version alone must still resolve (and fail)
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="version 99"):
            load_model(path)

    def test_version_format_disagreement_rejected(self, saved_payload):
        path, payload = saved_payload
        payload["version"] = 1  # but format says v3
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="disagrees"):
            load_model(path)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(SerializationError, match="JSON object"):
            load_model(path)

    def test_legacy_artifact_without_version_still_loads(
        self, fitted, tmp_path, version
    ):
        # Documents written before the integer field existed carry only
        # the format string; they must keep loading by format alone.
        path = tmp_path / "model.json"
        original = fitted.require_fitted_recommender()
        save_model(original, path, version=version)
        payload = json.loads(path.read_text())
        del payload["version"]
        path.write_text(json.dumps(payload))
        assert load_model(path).model_size == original.model_size


class TestAtomicSave:
    """``save_model`` must never leave a truncated artifact behind.

    Regression for the long-lived-serving defect where a crash mid
    ``write_text`` left garbage a hot-swap watcher would load or die on:
    serialization now goes to a same-directory temp file that is
    ``os.replace``d over the target only once complete.
    """

    def test_failure_mid_serialization_keeps_old_artifact(
        self, fitted, tmp_path, monkeypatch
    ):
        import repro.data.model_io as model_io

        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path)
        before = path.read_text(encoding="utf-8")

        def exploding_dump(payload, handle, **kwargs):
            handle.write('{"format": "truncated gar')  # partial bytes land
            raise RuntimeError("disk full mid-serialization")

        monkeypatch.setattr(model_io.json, "dump", exploding_dump)
        with pytest.raises(RuntimeError, match="disk full"):
            save_model(fitted.require_fitted_recommender(), path)
        # The pre-existing artifact is byte-identical and still loads.
        assert path.read_text(encoding="utf-8") == before
        assert load_model(path).model_size > 0

    def test_failure_leaves_no_temp_files(self, fitted, tmp_path, monkeypatch):
        import repro.data.model_io as model_io

        path = tmp_path / "model.json"

        def exploding_dump(payload, handle, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(model_io.json, "dump", exploding_dump)
        with pytest.raises(RuntimeError):
            save_model(fitted.require_fitted_recommender(), path)
        assert list(tmp_path.iterdir()) == []  # no artifact, no temp debris

    def test_successful_save_leaves_only_the_artifact(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted.require_fitted_recommender(), path)
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]
        assert load_model(path).model_size > 0
