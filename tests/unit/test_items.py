"""Unit tests for items and the catalog."""

from __future__ import annotations

import pytest

from repro.core.items import Item, ItemCatalog
from repro.errors import CatalogError, ValidationError

from tests.conftest import promo


class TestItem:
    def test_target_item_requires_promotions(self):
        with pytest.raises(ValidationError, match="promotion code"):
            Item("T", (), is_target=True)

    def test_nontarget_item_may_lack_promotions(self):
        item = Item("descriptive")
        assert item.promotions == ()

    def test_duplicate_promo_code_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            Item("X", (promo("P", 1, 0.5), promo("P", 2, 0.5)))

    def test_empty_id_rejected(self):
        with pytest.raises(ValidationError, match="item_id"):
            Item("")

    def test_promotion_lookup(self):
        item = Item("X", (promo("P1", 1, 0.5), promo("P2", 2, 0.5)))
        assert item.promotion("P2").price == 2
        assert item.has_promotion("P1")
        assert not item.has_promotion("P3")

    def test_unknown_promotion_raises(self):
        item = Item("X", (promo("P1", 1, 0.5),))
        with pytest.raises(CatalogError, match="no promotion code"):
            item.promotion("nope")

    def test_descriptive_convention(self):
        item = Item.descriptive("Gender=Male")
        assert item.promotions[0].price == 1.0
        assert item.promotions[0].cost == 0.0
        assert not item.is_target

    def test_promotions_by_favorability(self, milk_codes):
        item = Item("Milk", milk_codes)
        ordered = item.promotions_by_favorability()
        assert len(ordered) == 4
        # $3.0/4-pack must precede $3.2/4-pack
        codes = [c.code for c in ordered]
        assert codes.index("4pack-lo") < codes.index("4pack-hi")


class TestItemCatalog:
    def test_duplicate_item_rejected(self):
        catalog = ItemCatalog()
        catalog.add(Item("X"))
        with pytest.raises(CatalogError, match="duplicate"):
            catalog.add(Item("X"))

    def test_membership_len_iter(self, small_catalog):
        assert "Perfume" in small_catalog
        assert "Nope" not in small_catalog
        assert len(small_catalog) == 4
        assert {item.item_id for item in small_catalog} == {
            "Perfume",
            "Bread",
            "Sunchip",
            "Diamond",
        }

    def test_get_unknown_raises_with_readable_message(self, small_catalog):
        with pytest.raises(CatalogError) as err:
            small_catalog.get("Nope")
        assert "Nope" in str(err.value)

    def test_target_split(self, small_catalog):
        assert small_catalog.target_ids() == ["Sunchip", "Diamond"]
        assert small_catalog.nontarget_ids() == ["Perfume", "Bread"]

    def test_promotion_resolution(self, small_catalog):
        assert small_catalog.promotion("Sunchip", "M").price == 4.5

    def test_validate_for_mining_needs_both_sides(self):
        only_targets = ItemCatalog.from_items(
            [Item("T", (promo("P", 1, 0),), is_target=True)]
        )
        with pytest.raises(ValidationError, match="non-target"):
            only_targets.validate_for_mining()
        only_nontargets = ItemCatalog.from_items([Item("X")])
        with pytest.raises(ValidationError, match="no target"):
            only_nontargets.validate_for_mining()

    def test_items_view_is_a_copy(self, small_catalog):
        view = small_catalog.items
        view.pop("Perfume")
        assert "Perfume" in small_catalog
