"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ValidationError,
            errors.CatalogError,
            errors.HierarchyError,
            errors.MiningError,
            errors.RecommenderError,
            errors.DataGenerationError,
            errors.SerializationError,
            errors.EvaluationError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, errors.ProfitMiningError)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(errors.ProfitMiningError):
            raise errors.MiningError("boom")

    def test_value_errors_remain_value_errors(self):
        assert issubclass(errors.ValidationError, ValueError)
        assert issubclass(errors.HierarchyError, ValueError)

    def test_catalog_error_message_unquoted(self):
        # KeyError normally repr-quotes its message; CatalogError must not.
        err = errors.CatalogError("unknown item id 'X'")
        assert str(err) == "unknown item id 'X'"

    def test_all_exported(self):
        for name in errors.__all__:
            assert hasattr(errors, name)
