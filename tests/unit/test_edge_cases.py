"""Edge cases and failure injection across the pipeline."""

from __future__ import annotations

import pytest

from repro.core import (
    ConceptHierarchy,
    Item,
    ItemCatalog,
    MinerConfig,
    MOAHierarchy,
    ProfitMiner,
    ProfitMinerConfig,
    PromotionCode,
    Sale,
    SavingMOA,
    Transaction,
    TransactionDB,
)
from repro.core.mining import mine_rules
from repro.eval import evaluate

from tests.conftest import promo


def single_target_world(price: float, cost: float):
    catalog = ItemCatalog.from_items(
        [
            Item("A", (promo("P", 1.0, 0.5),)),
            Item("T", (promo("P", price, cost),), is_target=True),
        ]
    )
    return catalog, ConceptHierarchy.for_catalog(catalog)


class TestDegenerateDatabases:
    def test_single_transaction(self):
        catalog, hierarchy = single_target_world(2.0, 1.0)
        db = TransactionDB(
            catalog, [Transaction(0, (Sale("A", "P"),), Sale("T", "P"))]
        )
        miner = ProfitMiner(
            hierarchy,
            config=ProfitMinerConfig(mining=MinerConfig(min_support=0.5)),
        ).fit(db)
        rec = miner.recommend([Sale("A", "P")])
        assert (rec.item_id, rec.promo_code) == ("T", "P")

    def test_identical_transactions(self):
        catalog, hierarchy = single_target_world(2.0, 1.0)
        db = TransactionDB(
            catalog,
            [
                Transaction(i, (Sale("A", "P"),), Sale("T", "P"))
                for i in range(20)
            ],
        )
        miner = ProfitMiner(
            hierarchy,
            config=ProfitMinerConfig(mining=MinerConfig(min_support=0.1)),
        ).fit(db)
        result = evaluate(miner, db, hierarchy)
        assert result.gain == pytest.approx(1.0)
        assert result.hit_rate == 1.0

    def test_loss_leader_target(self):
        """A target sold below cost: mining must survive negative profit."""
        catalog, hierarchy = single_target_world(1.0, 1.5)
        db = TransactionDB(
            catalog,
            [
                Transaction(i, (Sale("A", "P"),), Sale("T", "P"))
                for i in range(10)
            ],
        )
        miner = ProfitMiner(
            hierarchy,
            config=ProfitMinerConfig(mining=MinerConfig(min_support=0.2)),
        ).fit(db)
        # The only target is loss-making; the recommender still recommends
        # it (there is nothing else), and gain is negative/negative = 1.
        result = evaluate(miner, db, hierarchy)
        assert result.hit_rate == 1.0

    def test_quantities_scale_rule_profit(self):
        catalog, hierarchy = single_target_world(2.0, 1.0)
        small_q = TransactionDB(
            catalog,
            [
                Transaction(i, (Sale("A", "P"),), Sale("T", "P", quantity=1))
                for i in range(10)
            ],
        )
        big_q = TransactionDB(
            catalog,
            [
                Transaction(i, (Sale("A", "P"),), Sale("T", "P", quantity=7))
                for i in range(10)
            ],
        )
        moa = MOAHierarchy(catalog, hierarchy)
        config = MinerConfig(min_support=0.2, max_body_size=1)
        small_res = mine_rules(small_q, moa, SavingMOA(), config)
        big_res = mine_rules(big_q, moa, SavingMOA(), config)
        assert big_res.default_rule.stats.rule_profit == pytest.approx(
            7 * small_res.default_rule.stats.rule_profit
        )


class TestDeepHierarchies:
    def test_five_level_chain(self):
        parents = {"L1": ("ANY",)}
        for depth in range(2, 6):
            parents[f"L{depth}"] = (f"L{depth - 1}",)
        parents["leaf"] = ("L5",)
        parents["T"] = ("ANY",)
        hierarchy = ConceptHierarchy(parents=parents, items={"leaf", "T"})
        catalog = ItemCatalog.from_items(
            [
                Item("leaf", (promo("P", 1.0, 0.5),)),
                Item("T", (promo("P", 2.0, 1.0),), is_target=True),
            ]
        )
        hierarchy.validate_against_catalog(catalog)
        moa = MOAHierarchy(catalog, hierarchy)
        gsales = moa.generalizations_of_sale(Sale("leaf", "P"))
        assert len([g for g in gsales if g.kind.value == "concept"]) == 5

    def test_mining_uses_every_level(self):
        parents = {
            "Food": ("ANY",),
            "Meat": ("Food",),
            "chicken": ("Meat",),
            "beef": ("Meat",),
            "T": ("ANY",),
        }
        hierarchy = ConceptHierarchy(parents=parents, items={"chicken", "beef", "T"})
        catalog = ItemCatalog.from_items(
            [
                Item("chicken", (promo("P", 1.0, 0.5),)),
                Item("beef", (promo("P", 1.0, 0.5),)),
                Item("T", (promo("P", 2.0, 1.0),), is_target=True),
            ]
        )
        transactions = [
            Transaction(i, (Sale("chicken" if i % 2 else "beef", "P"),), Sale("T", "P"))
            for i in range(20)
        ]
        db = TransactionDB(catalog, transactions)
        moa = MOAHierarchy(catalog, hierarchy)
        result = mine_rules(
            db, moa, SavingMOA(), MinerConfig(min_support=0.6, max_body_size=1)
        )
        bodies = {
            next(iter(s.rule.body)).describe()
            for s in result.scored_rules
            if s.rule.body
        }
        # item-level bodies are below 60% support; concept bodies are not
        assert "[Meat]" in bodies and "[Food]" in bodies
        assert "chicken" not in bodies


class TestManyPromotionCodes:
    def test_wide_ladder_with_packings(self):
        codes = tuple(
            PromotionCode(code=f"c{i}", price=1.0 + 0.1 * i, cost=0.5, packing=1 + i % 3)
            for i in range(10)
        )
        catalog = ItemCatalog.from_items(
            [
                Item("A", codes),
                Item("T", codes, is_target=True),
            ]
        )
        hierarchy = ConceptHierarchy.for_catalog(catalog)
        moa = MOAHierarchy(catalog, hierarchy)
        for code in codes:
            lifted = moa.generalizations_of_sale(Sale("A", code.code))
            assert any(g.kind.value == "promo" for g in lifted)
            heads = moa.target_heads_of_sale(Sale("T", code.code))
            assert heads  # at least the exact code
