"""Unit tests for promotion codes and the favorability order (Section 2)."""

from __future__ import annotations

import pytest

from repro.core.promotion import (
    PromotionCode,
    favorability_covers,
    favorable_or_equal_codes,
    is_at_least_as_favorable,
    is_more_favorable,
    maximal_codes,
    sort_by_favorability,
)
from repro.errors import ValidationError

from tests.conftest import promo


class TestPromotionCodeValidation:
    def test_valid_code_constructs(self):
        code = promo("P1", 3.2, 2.0, packing=4)
        assert code.price == 3.2
        assert code.cost == 2.0
        assert code.packing == 4

    def test_empty_code_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            PromotionCode(code="", price=1.0, cost=0.5)

    @pytest.mark.parametrize("price", [0.0, -1.0, float("inf"), float("nan")])
    def test_bad_price_rejected(self, price):
        with pytest.raises(ValidationError, match="price"):
            PromotionCode(code="P", price=price, cost=0.0)

    @pytest.mark.parametrize("cost", [-0.01, float("inf"), float("nan")])
    def test_bad_cost_rejected(self, cost):
        with pytest.raises(ValidationError, match="cost"):
            PromotionCode(code="P", price=1.0, cost=cost)

    @pytest.mark.parametrize("packing", [0, -1])
    def test_bad_packing_rejected(self, packing):
        with pytest.raises(ValidationError, match="packing"):
            PromotionCode(code="P", price=1.0, cost=0.5, packing=packing)

    def test_cost_may_exceed_price(self):
        loss_leader = promo("P", 1.0, 1.5)
        assert loss_leader.profit == pytest.approx(-0.5)

    def test_derived_quantities(self):
        code = promo("P", 3.2, 2.0, packing=4)
        assert code.profit == pytest.approx(1.2)
        assert code.unit_price == pytest.approx(0.8)
        assert code.unit_profit == pytest.approx(0.3)

    def test_describe_mentions_price_and_cost(self):
        text = promo("P", 3.2, 2.0, packing=4).describe()
        assert "$3.20" in text and "4-pack" in text and "$2.00" in text


class TestFavorability:
    def test_lower_price_same_packing_is_more_favorable(self):
        assert is_more_favorable(promo("a", 3.5, 1, 2), promo("b", 3.8, 1, 2))

    def test_bigger_packing_same_price_is_more_favorable(self):
        assert is_more_favorable(promo("a", 3.5, 1, 2), promo("b", 3.5, 1, 1))

    def test_paper_example_incomparable(self):
        # $3.80/2-pack is not more favorable than $3.50/pack: unwanted
        # quantity at a higher price (Section 2).
        two_pack = promo("a", 3.8, 1, 2)
        one_pack = promo("b", 3.5, 1, 1)
        assert not is_more_favorable(two_pack, one_pack)
        assert not is_more_favorable(one_pack, two_pack)

    def test_strictness_equal_codes_not_more_favorable(self):
        a, b = promo("a", 3.5, 1.0), promo("b", 3.5, 2.0)
        assert not is_more_favorable(a, b)
        assert not is_more_favorable(b, a)

    def test_cost_does_not_matter_to_the_customer(self):
        cheap_cost = promo("a", 3.5, 0.1)
        pricey_cost = promo("b", 3.6, 3.0)
        assert is_more_favorable(cheap_cost, pricey_cost)

    def test_reflexive_or_equal_variant(self):
        a, b = promo("a", 3.5, 1.0), promo("b", 3.5, 2.0)
        assert is_at_least_as_favorable(a, b)
        assert is_at_least_as_favorable(a, a)

    def test_antisymmetry_of_strict_order(self, milk_codes):
        for p in milk_codes:
            for q in milk_codes:
                assert not (is_more_favorable(p, q) and is_more_favorable(q, p))

    def test_transitivity_on_milk_ladder(self, milk_codes):
        lo4, hi4 = milk_codes[1], milk_codes[0]
        lo1 = milk_codes[3]
        # $3.0/4-pack ≺ $3.2/4-pack; and both dominate nothing smaller-packed
        assert is_more_favorable(lo4, hi4)
        assert not is_more_favorable(lo1, lo4)


class TestFavorabilityHelpers:
    def test_favorable_or_equal_codes(self, milk_codes):
        hi4 = milk_codes[0]  # $3.2/4-pack
        lifted = favorable_or_equal_codes(hi4, milk_codes)
        assert set(c.code for c in lifted) == {"4pack-hi", "4pack-lo"}

    def test_covers_skip_transitive_edges(self):
        a = promo("a", 3.0, 1)
        b = promo("b", 3.5, 1)
        c = promo("c", 4.0, 1)
        edges = favorability_covers([a, b, c])
        pairs = {(p.code, q.code) for p, q in edges}
        assert pairs == {("a", "b"), ("b", "c")}  # no (a, c): b sits between

    def test_maximal_codes_single_chain(self, milk_codes):
        roots = maximal_codes(milk_codes)
        assert {c.code for c in roots} == {"4pack-lo", "pack-lo"}

    def test_sort_by_favorability_is_topological(self, milk_codes):
        ordered = sort_by_favorability(milk_codes)
        positions = {c.code: i for i, c in enumerate(ordered)}
        for p in milk_codes:
            for q in milk_codes:
                if is_more_favorable(p, q):
                    assert positions[p.code] < positions[q.code]

    def test_sort_deterministic(self, milk_codes):
        assert sort_by_favorability(milk_codes) == sort_by_favorability(
            tuple(reversed(milk_codes))
        )
