"""Unit tests for the GSale value type."""

from __future__ import annotations

import pytest

from repro.core.generalized import GKind, GSale
from repro.errors import ValidationError


class TestConstruction:
    def test_three_forms(self):
        assert GSale.concept("Food").kind is GKind.CONCEPT
        assert GSale.item("Egg").kind is GKind.ITEM
        promo = GSale.promo_form("Egg", "P1")
        assert promo.kind is GKind.PROMO
        assert promo.promo == "P1"

    def test_promo_form_requires_code(self):
        with pytest.raises(ValidationError, match="needs a"):
            GSale(GKind.PROMO, "Egg")

    def test_non_promo_forms_reject_code(self):
        with pytest.raises(ValidationError, match="must not carry"):
            GSale(GKind.ITEM, "Egg", "P1")
        with pytest.raises(ValidationError, match="must not carry"):
            GSale(GKind.CONCEPT, "Food", "P1")

    def test_empty_node_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            GSale.item("")


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = GSale.promo_form("Egg", "P1")
        b = GSale.promo_form("Egg", "P1")
        assert a == b
        assert hash(a) == hash(b)
        assert a != GSale.promo_form("Egg", "P2")
        assert GSale.item("Egg") != GSale.concept("Egg")

    def test_sets_of_gsales(self):
        body = frozenset({GSale.item("Egg"), GSale.concept("Food")})
        assert GSale.item("Egg") in body

    def test_ordering_is_total_and_stable(self):
        gsales = [
            GSale.promo_form("B", "P2"),
            GSale.item("B"),
            GSale.concept("A"),
            GSale.promo_form("B", "P1"),
        ]
        ordered = sorted(gsales)
        assert ordered == sorted(reversed(gsales))
        assert ordered[0] == GSale.concept("A")

    def test_describe_forms(self):
        assert GSale.concept("Food").describe() == "[Food]"
        assert GSale.item("Egg").describe() == "Egg"
        assert GSale.promo_form("Egg", "P1").describe() == "<Egg @ P1>"

    def test_precomputed_hash_matches_field_tuple(self):
        """The cached hash is exactly the identity-tuple hash, so any two
        equal GSales — including pickle round-trips — collide correctly."""
        import pickle

        for gsale in (
            GSale.concept("Food"),
            GSale.item("Egg"),
            GSale.promo_form("Egg", "P1"),
        ):
            assert hash(gsale) == hash((gsale.kind, gsale.node, gsale.promo))
            clone = pickle.loads(pickle.dumps(gsale))
            assert clone == gsale
            assert hash(clone) == hash(gsale)
