"""Unit tests for the decision-tree "quick solution" baseline."""

from __future__ import annotations

import pytest

from repro.baselines.decision_tree import DecisionTreeRecommender
from repro.core.sales import Sale, Transaction, TransactionDB
from repro.errors import RecommenderError, ValidationError
from repro.eval import evaluate


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValidationError, match="max_depth"):
            DecisionTreeRecommender(max_depth=0)
        with pytest.raises(ValidationError, match="min_leaf"):
            DecisionTreeRecommender(min_leaf=0)

    def test_names(self):
        assert DecisionTreeRecommender().name == "DT"
        assert DecisionTreeRecommender(profit_rerank=True).name == "DT(profit)"

    def test_unfitted_raises(self):
        with pytest.raises(RecommenderError):
            DecisionTreeRecommender().recommend([])

    def test_empty_db_rejected(self, small_catalog):
        with pytest.raises(ValidationError, match="empty"):
            DecisionTreeRecommender().fit(TransactionDB(small_catalog, []))


class TestLearning:
    def test_splits_on_the_informative_item(self, small_db):
        tree = DecisionTreeRecommender(min_leaf=5).fit(small_db)
        assert tree.depth >= 1
        assert tree.n_leaves >= 2
        # Perfume buyers bought M/H Sunchip; bread buyers bought L.
        perfume_pick = tree.recommend([Sale("Perfume", "P1")])
        bread_pick = tree.recommend([Sale("Bread", "P1")])
        assert perfume_pick.promo_code in ("M", "H")
        assert bread_pick.promo_code == "L"

    def test_depth_limit_respected(self, small_db):
        stump = DecisionTreeRecommender(max_depth=1, min_leaf=5).fit(small_db)
        assert stump.depth <= 1

    def test_min_leaf_blocks_tiny_splits(self, small_db):
        # min_leaf larger than any useful partition: the tree stays a stump.
        blunt = DecisionTreeRecommender(min_leaf=40).fit(small_db)
        assert blunt.depth == 0
        assert blunt.n_leaves == 1

    def test_deterministic(self, small_db):
        a = DecisionTreeRecommender(min_leaf=5).fit(small_db)
        b = DecisionTreeRecommender(min_leaf=5).fit(small_db)
        basket = [Sale("Perfume", "P1")]
        assert a.recommend(basket) == b.recommend(basket)

    def test_model_free_size(self, small_db):
        assert DecisionTreeRecommender().fit(small_db).model_size is None


class TestProfitAfterthought:
    def test_rerank_prefers_profitable_class(self, small_catalog):
        # Leaf with 3× cheap Sunchip and 1× Diamond: plain DT picks the
        # majority, the afterthought picks 0.25 × $40 > 0.75 × $1.8.
        rows = [
            Transaction(0, (Sale("Perfume", "P1"),), Sale("Sunchip", "L")),
            Transaction(1, (Sale("Perfume", "P1"),), Sale("Sunchip", "L")),
            Transaction(2, (Sale("Perfume", "P1"),), Sale("Sunchip", "L")),
            Transaction(3, (Sale("Perfume", "P1"),), Sale("Diamond", "D")),
        ]
        db = TransactionDB(small_catalog, rows)
        plain = DecisionTreeRecommender(min_leaf=1).fit(db)
        greedy = DecisionTreeRecommender(min_leaf=1, profit_rerank=True).fit(db)
        basket = [Sale("Perfume", "P1")]
        assert plain.recommend(basket).item_id == "Sunchip"
        assert greedy.recommend(basket).item_id == "Diamond"

    def test_evaluable_with_the_harness(self, small_db, small_hierarchy):
        tree = DecisionTreeRecommender(min_leaf=5).fit(small_db)
        result = evaluate(tree, small_db, small_hierarchy)
        assert 0 < result.hit_rate <= 1
        assert 0 < result.gain <= 1
