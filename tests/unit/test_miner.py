"""Unit tests for the end-to-end ProfitMiner facade."""

from __future__ import annotations

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.profit import BinaryProfit, BuyingMOA, SavingMOA
from repro.core.sales import Sale
from repro.errors import RecommenderError


def config(min_support=0.05, use_moa=True) -> ProfitMinerConfig:
    return ProfitMinerConfig(
        mining=MinerConfig(min_support=min_support, max_body_size=2),
        use_moa=use_moa,
    )


class TestNaming:
    def test_derived_names_match_paper_labels(self, small_hierarchy):
        assert ProfitMiner(small_hierarchy).name == "PROF+MOA"
        assert (
            ProfitMiner(small_hierarchy, config=config(use_moa=False)).name
            == "PROF-MOA"
        )
        assert (
            ProfitMiner(small_hierarchy, profit_model=BinaryProfit()).name
            == "CONF+MOA"
        )
        assert (
            ProfitMiner(
                small_hierarchy,
                profit_model=BinaryProfit(),
                config=config(use_moa=False),
            ).name
            == "CONF-MOA"
        )

    def test_explicit_name_wins(self, small_hierarchy):
        miner = ProfitMiner(small_hierarchy, name="custom")
        assert miner.name == "custom"


class TestLifecycle:
    def test_recommend_before_fit_raises(self, small_hierarchy):
        miner = ProfitMiner(small_hierarchy, config=config())
        with pytest.raises(RecommenderError, match="fitted"):
            miner.recommend([Sale("Bread", "P1")])
        with pytest.raises(RecommenderError):
            miner.require_fitted_recommender()

    def test_fit_returns_self_and_populates_state(self, small_hierarchy, small_db):
        miner = ProfitMiner(small_hierarchy, config=config())
        assert miner.fit(small_db) is miner
        assert miner.mining_result is not None
        assert miner.covering_tree is not None
        assert miner.prune_report is not None
        assert miner.recommender is not None
        assert miner.initial_recommender is not None
        assert miner.model_size >= 1

    def test_summary_reports_pipeline_numbers(self, small_hierarchy, small_db):
        miner = ProfitMiner(small_hierarchy, config=config()).fit(small_db)
        text = miner.summary()
        assert "mined" in text and "pruned" in text
        assert str(len(small_db)) in text


class TestBehaviour:
    def test_learns_small_db_structure(self, small_hierarchy, small_db):
        miner = ProfitMiner(small_hierarchy, config=config()).fit(small_db)
        perfume = miner.recommend([Sale("Perfume", "P1")])
        assert perfume.item_id == "Sunchip"
        assert perfume.promo_code == "M"  # the profitable price perfume buyers pay

    def test_cut_model_is_subset_of_initial(self, small_hierarchy, small_db):
        miner = ProfitMiner(small_hierarchy, config=config()).fit(small_db)
        initial = {s.rule for s in miner.initial_recommender.ranked_rules}
        final = {s.rule for s in miner.recommender.ranked_rules}
        assert final <= initial
        assert len(final) <= len(initial)

    def test_explain_runs(self, small_hierarchy, small_db):
        miner = ProfitMiner(small_hierarchy, config=config()).fit(small_db)
        assert "recommendation" in miner.explain([Sale("Perfume", "P1")])

    def test_rules_property_rank_ordered(self, small_hierarchy, small_db):
        miner = ProfitMiner(small_hierarchy, config=config()).fit(small_db)
        keys = [s.rank_key() for s in miner.rules]
        assert keys == sorted(keys)

    def test_buying_moa_profit_model_runs(self, small_hierarchy, small_db):
        miner = ProfitMiner(
            small_hierarchy, profit_model=BuyingMOA(), config=config()
        ).fit(small_db)
        assert miner.recommend([Sale("Perfume", "P1")]).item_id == "Sunchip"

    def test_conf_variant_prefers_likely_over_profitable(
        self, small_hierarchy, small_db
    ):
        conf = ProfitMiner(
            small_hierarchy, profit_model=BinaryProfit(), config=config()
        ).fit(small_db)
        prof = ProfitMiner(small_hierarchy, config=config()).fit(small_db)
        basket = [Sale("Perfume", "P1")]
        conf_pick = conf.recommend(basket)
        prof_pick = prof.recommend(basket)
        catalog = small_db.catalog
        conf_profit = catalog.promotion(conf_pick.item_id, conf_pick.promo_code).profit
        prof_profit = catalog.promotion(prof_pick.item_id, prof_pick.promo_code).profit
        assert prof_profit >= conf_profit

    def test_config_helpers(self):
        assert ProfitMinerConfig.prof_moa(min_support=0.1).use_moa
        assert not ProfitMinerConfig.prof_no_moa(min_support=0.1).use_moa
