"""Unit tests for k-fold cross-validation (Section 5.1)."""

from __future__ import annotations

import pytest

from repro.baselines.mpi import MPIRecommender
from repro.errors import EvaluationError
from repro.eval.cross_validation import CVResult, cross_validate, kfold_indices
from repro.eval.metrics import EvalConfig


class TestKFoldIndices:
    def test_partition_properties(self):
        splits = kfold_indices(53, k=5, seed=0)
        assert len(splits) == 5
        all_test = [i for _, test in splits for i in test]
        assert sorted(all_test) == list(range(53))
        for train, test in splits:
            assert set(train) | set(test) == set(range(53))
            assert not set(train) & set(test)

    def test_balanced_sizes(self):
        splits = kfold_indices(100, k=5, seed=0)
        assert all(len(test) == 20 for _, test in splits)

    def test_deterministic(self):
        assert kfold_indices(40, seed=3) == kfold_indices(40, seed=3)
        assert kfold_indices(40, seed=3) != kfold_indices(40, seed=4)

    def test_validation(self):
        with pytest.raises(EvaluationError, match="k"):
            kfold_indices(10, k=1)
        with pytest.raises(EvaluationError, match="at least"):
            kfold_indices(3, k=5)


class TestCrossValidate:
    def test_five_runs_reported(self, small_db, small_hierarchy):
        cv = cross_validate(MPIRecommender, small_db, small_hierarchy, k=5, seed=0)
        assert cv.k == 5
        assert cv.recommender_name == "MPI"
        assert 0 <= cv.hit_rate <= 1
        assert cv.gain == pytest.approx(
            sum(r.gain for r in cv.fold_results) / 5
        )

    def test_shared_splits_reused(self, small_db, small_hierarchy):
        splits = kfold_indices(len(small_db), k=5, seed=1)
        a = cross_validate(
            MPIRecommender, small_db, small_hierarchy, splits=splits
        )
        b = cross_validate(
            MPIRecommender, small_db, small_hierarchy, splits=splits
        )
        assert [r.gain for r in a.fold_results] == [r.gain for r in b.fold_results]

    def test_eval_config_passed_through(self, small_db, small_hierarchy):
        moa = cross_validate(
            MPIRecommender,
            small_db,
            small_hierarchy,
            EvalConfig(moa_hit_test=True),
            k=3,
        )
        exact = cross_validate(
            MPIRecommender,
            small_db,
            small_hierarchy,
            EvalConfig(moa_hit_test=False),
            k=3,
        )
        assert moa.hit_rate >= exact.hit_rate

    def test_model_size_none_for_model_free(self, small_db, small_hierarchy):
        cv = cross_validate(MPIRecommender, small_db, small_hierarchy, k=3)
        assert cv.model_size is None

    def test_profit_range_aggregation(self, small_db, small_hierarchy):
        cv = cross_validate(MPIRecommender, small_db, small_hierarchy, k=3)
        rows = cv.hit_rate_by_profit_range()
        assert [r[0] for r in rows] == ["Low", "Medium", "High"]
        assert sum(r[2] for r in rows) == len(small_db)

    def test_empty_folds_rejected(self):
        with pytest.raises(EvaluationError):
            CVResult(recommender_name="x", fold_results=[])
