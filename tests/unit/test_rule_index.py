"""Unit tests for the inverted rule-matching index (serving hot path)."""

from __future__ import annotations

import pytest

from repro.core.generalized import GSale
from repro.core.mining import MinerConfig, mine_rules
from repro.core.mpf import MPFRecommender
from repro.core.profit import SavingMOA
from repro.core.rule_index import RuleMatchIndex, basket_key
from repro.core.rules import Rule, RuleStats, ScoredRule
from repro.core.sales import Sale


@pytest.fixture
def recommender(small_db, small_moa):
    result = mine_rules(
        small_db,
        small_moa,
        SavingMOA(),
        MinerConfig(min_support=0.05, max_body_size=2),
    )
    return MPFRecommender(result.all_rules, small_moa)


@pytest.fixture
def index(recommender):
    return recommender.rule_index


BASKETS = [
    [Sale("Perfume", "P1")],
    [Sale("Bread", "P1")],
    [Sale("Bread", "P2")],
    [Sale("Perfume", "P1"), Sale("Bread", "P2")],
    [Sale("Perfume", "P1"), Sale("Bread", "P1")],
]


class TestBasketKey:
    def test_ignores_quantity_and_order(self):
        a = [Sale("Perfume", "P1", 1.0), Sale("Bread", "P2", 3.0)]
        b = [Sale("Bread", "P2", 7.0), Sale("Perfume", "P1", 2.0)]
        assert basket_key(a) == basket_key(b)

    def test_distinguishes_promotions(self):
        assert basket_key([Sale("Bread", "P1")]) != basket_key(
            [Sale("Bread", "P2")]
        )

    def test_duplicate_sales_collapse(self):
        once = [Sale("Bread", "P1")]
        twice = [Sale("Bread", "P1"), Sale("Bread", "P1")]
        assert basket_key(once) == basket_key(twice)


class TestIndexStructure:
    def test_counts(self, index, recommender):
        assert index.n_rules == recommender.model_size
        bodies = [s.rule.body for s in recommender.ranked_rules]
        distinct = set().union(*bodies) if bodies else set()
        assert index.n_indexed_gsales == len(distinct)
        assert index.n_postings == sum(len(b) for b in bodies)

    def test_postings_are_rank_ascending(self, index):
        for posting in index.compiled.postings.values():
            assert posting == sorted(posting)

    def test_default_rule_always_matches(self, index):
        # The mined rule list carries exactly one empty-body default rule.
        assert len(index.compiled.always_match) == 1
        scored = index.first_match([])
        assert scored is not None

    def test_no_default_returns_none(self, small_moa):
        body = frozenset([GSale.item("Bread")])
        head = GSale.promo_form("Sunchip", "L")
        scored = ScoredRule(
            rule=Rule(body=body, head=head, order=0),
            stats=RuleStats(n_matched=4, n_hits=2, rule_profit=2.0, n_total=10),
        )
        index = RuleMatchIndex([scored], small_moa)
        assert index.first_match([Sale("Perfume", "P1")]) is None
        assert index.first_match([Sale("Bread", "P1")]) is scored


class TestStats:
    """Regressions for :meth:`RuleMatchIndex.stats` well-formedness."""

    EXPECTED_KEYS = {
        "n_rules",
        "n_indexed_gsales",
        "n_postings",
        "n_default_rules",
        "avg_body_size",
        "avg_postings_per_gsale",
        "shapes",
        "store_bytes",
    }

    def test_fitted_model_stats_are_consistent(self, index):
        stats = index.stats()
        assert set(stats) == self.EXPECTED_KEYS
        assert stats["n_rules"] == index.n_rules
        assert stats["n_default_rules"] == 1
        assert stats["avg_body_size"] > 0
        assert sum(stats["shapes"].values()) == index.n_rules
        assert stats["store_bytes"] > 0

    def test_zero_rule_model_stats_are_zeroed_not_broken(self, small_moa):
        # Regression: a zero-rule model used to be a division by zero
        # waiting to happen; every counter must come back present and
        # zeroed instead.
        stats = RuleMatchIndex([], small_moa).stats()
        assert set(stats) == self.EXPECTED_KEYS
        assert stats["n_rules"] == 0
        assert stats["n_indexed_gsales"] == 0
        assert stats["n_postings"] == 0
        assert stats["n_default_rules"] == 0
        assert stats["avg_body_size"] == 0.0
        assert stats["avg_postings_per_gsale"] == 0.0
        assert stats["shapes"] == {
            "default": 0, "concept": 0, "item": 0, "promo": 0
        }
        assert stats["store_bytes"] >= 0

    def test_stats_are_json_serializable(self, index, small_moa):
        import json

        json.dumps(index.stats())
        json.dumps(RuleMatchIndex([], small_moa).stats())


class TestMatchingParity:
    @pytest.mark.parametrize("basket", BASKETS)
    def test_first_match_equals_naive(self, recommender, basket):
        assert recommender.recommendation_rule(
            basket
        ) is recommender.recommendation_rule(basket, naive=True)

    @pytest.mark.parametrize("basket", BASKETS)
    def test_all_matches_equal_naive(self, recommender, basket):
        indexed = recommender.matching_rules(basket)
        naive = recommender.matching_rules(basket, naive=True)
        assert [id(s) for s in indexed] == [id(s) for s in naive]

    def test_parity_over_training_db(self, recommender, small_db):
        for transaction in small_db:
            basket = transaction.nontarget_sales
            assert recommender.recommendation_rule(
                basket
            ) is recommender.recommendation_rule(basket, naive=True)

    def test_top_k_parity(self, recommender):
        for basket in BASKETS:
            indexed = recommender.recommend_top_k(basket, k=3)
            naive = recommender.recommend_top_k(basket, k=3, naive=True)
            assert [(p.item_id, p.promo_code) for p in indexed] == [
                (p.item_id, p.promo_code) for p in naive
            ]


class TestRecommendMany:
    def test_matches_sequential_recommend(self, recommender):
        batch = recommender.recommend_many(BASKETS)
        singles = [recommender.recommend(b) for b in BASKETS]
        assert [(r.item_id, r.promo_code) for r in batch] == [
            (r.item_id, r.promo_code) for r in singles
        ]
        assert [r.rule for r in batch] == [r.rule for r in singles]

    def test_memoizes_repeated_baskets(self, recommender):
        basket = [Sale("Perfume", "P1")]
        first, second = recommender.recommend_many([basket, list(basket)])
        assert first is second  # served from the memo, same object
        # The memo persists across calls.
        (third,) = recommender.recommend_many([basket])
        assert third is first

    def test_memo_is_quantity_insensitive(self, recommender):
        a, b = recommender.recommend_many(
            [[Sale("Perfume", "P1", 1.0)], [Sale("Perfume", "P1", 5.0)]]
        )
        assert a is b

    def test_memo_lru_bounded_at_limit(self, recommender, monkeypatch):
        monkeypatch.setattr(MPFRecommender, "_MEMO_LIMIT", 1)
        recommender.recommend_many(BASKETS)
        assert len(recommender._batch_memo) <= 1
        # The surviving entry is the most recently served basket, not an
        # empty dict left by a wholesale clear.
        survivor = next(iter(recommender._batch_memo))
        assert survivor == basket_key(BASKETS[-1])

    def test_empty_batch(self, recommender):
        assert recommender.recommend_many([]) == []


class TestCandidateIds:
    def test_ids_deduplicated(self, index):
        basket = [Sale("Bread", "P1"), Sale("Bread", "P2")]
        ids = index.candidate_ids(basket)
        assert len(ids) == len(set(ids))

    def test_unknown_item_yields_nothing(self, recommender, small_moa):
        # An (item, promo) pair whose generalizations appear in no rule
        # body contributes no candidates; the default rule still fires.
        index = recommender.rule_index
        sunk = [Sale("Perfume", "P1")]
        ids = index.candidate_ids(sunk)
        assert all(gid in index.compiled.postings for gid in ids)
