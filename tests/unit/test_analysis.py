"""Unit tests for the model inspection utilities."""

from __future__ import annotations

import csv

import pytest

from repro.analysis import (
    coverage_report,
    export_rules_csv,
    pruning_summary,
    rules_table,
)
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.errors import RecommenderError


@pytest.fixture
def fitted(small_hierarchy, small_db):
    return ProfitMiner(
        small_hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.05, max_body_size=2)
        ),
    ).fit(small_db)


class TestRulesTable:
    def test_unfitted_raises(self, small_hierarchy):
        with pytest.raises(RecommenderError):
            rules_table(ProfitMiner(small_hierarchy))

    def test_rows_match_model(self, fitted):
        rows = rules_table(fitted)
        assert len(rows) == fitted.model_size
        assert rows[0]["rank"] == 1
        assert any(row["is_default"] for row in rows)
        for row in rows:
            assert 0 <= row["support"] <= 1
            assert 0 <= row["confidence"] <= 1
            assert row["n_hits"] <= row["n_matched"]

    def test_ranks_follow_mpf_order(self, fitted):
        rows = rules_table(fitted)
        ranks = [row["rank"] for row in rows]
        assert ranks == sorted(ranks)


class TestCsvExport:
    def test_round_trip(self, fitted, tmp_path):
        path = tmp_path / "rules.csv"
        n = export_rules_csv(fitted, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == n == fitted.model_size
        assert rows[0]["target_item"] in ("Sunchip", "Diamond")


class TestCoverageReport:
    def test_coverage_partitions_training_set(self, fitted, small_db):
        rows = coverage_report(fitted)
        assert sum(row["coverage"] for row in rows) == len(small_db)
        for row in rows:
            assert 0 <= row["coverage_hit_rate"] <= 1
            assert row["coverage_hits"] <= row["coverage"]

    def test_unfitted_raises(self, small_hierarchy):
        with pytest.raises(RecommenderError):
            coverage_report(ProfitMiner(small_hierarchy))


class TestPruningSummary:
    def test_summary_consistency(self, fitted):
        summary = pruning_summary(fitted)
        assert summary["rules_kept"] == fitted.model_size
        assert summary["rules_kept"] <= summary["tree_nodes"]
        assert summary["reduction_factor"] >= 1
        assert (
            summary["projected_profit_after"]
            >= summary["projected_profit_before"] - 1e-9
        )

    def test_unfitted_raises(self, small_hierarchy):
        with pytest.raises(RecommenderError):
            pruning_summary(ProfitMiner(small_hierarchy))


class TestValidationReport:
    def test_rows_cover_validation_set(self, fitted, small_db, small_hierarchy):
        from repro.analysis import validation_report

        rows = validation_report(fitted, small_db, small_hierarchy)
        assert sum(row["uses"] for row in rows) == len(small_db)
        for row in rows:
            assert 0 <= row["validation_hit_rate"] <= 1
            assert row["hits"] <= row["uses"]
            assert row["credited_profit"] <= row["recorded_profit"] + 1e-9

    def test_sorted_by_uses(self, fitted, small_db, small_hierarchy):
        from repro.analysis import validation_report

        rows = validation_report(fitted, small_db, small_hierarchy)
        uses = [row["uses"] for row in rows]
        assert uses == sorted(uses, reverse=True)

    def test_unfitted_raises(self, small_hierarchy, small_db):
        from repro.analysis import validation_report
        from repro.core.miner import ProfitMiner
        from repro.errors import RecommenderError

        with pytest.raises(RecommenderError):
            validation_report(ProfitMiner(small_hierarchy), small_db, small_hierarchy)
