"""Unit tests for cut-optimal pruning (Section 4.2, Theorems 1–2)."""

from __future__ import annotations

import pytest

from repro.core.covering import build_covering_tree
from repro.core.mining import MinerConfig, TransactionIndex, mine_rules
from repro.core.pessimistic import pessimistic_hits
from repro.core.profit import SavingMOA
from repro.core.pruning import PruneConfig, cut_optimal_prune, projected_profit
from repro.errors import ValidationError


@pytest.fixture
def mined(small_db, small_moa):
    return mine_rules(
        small_db,
        small_moa,
        SavingMOA(),
        MinerConfig(min_support=0.05, max_body_size=2),
    )


def fresh_tree(mined):
    return build_covering_tree(mined)


class TestPruneConfig:
    @pytest.mark.parametrize("cf", [0.0, 1.0, -0.5])
    def test_cf_bounds(self, cf):
        with pytest.raises(ValidationError, match="cf"):
            PruneConfig(cf=cf)


class TestProjectedProfit:
    def test_empty_coverage_is_zero(self, mined):
        index = mined.index
        head_id = index.candidate_head_ids[0]
        assert projected_profit(head_id, 0, index, 0.25) == 0.0

    def test_no_hits_is_zero(self, mined):
        index = mined.index
        # Diamond head on transactions that all bought Sunchip
        from repro.core.generalized import GSale

        diamond = index.gsale_id(GSale.promo_form("Diamond", "D"))
        sunchip_only = index.body_mask([index.gsale_id(GSale.item("Bread"))])
        sunchip_only &= ~index.head_hits_mask(diamond)
        assert projected_profit(diamond, sunchip_only, index, 0.25) == 0.0

    def test_matches_definition(self, mined):
        """Prof_pr = N·(1 − U_CF(N, E)) · (Σ p / hits), checked by hand."""
        index = mined.index
        from repro.core.generalized import GSale

        head = index.gsale_id(GSale.promo_form("Sunchip", "L"))
        cover = (1 << index.n) - 1  # everything
        hits_mask = cover & index.head_hits_mask(head)
        hits = hits_mask.bit_count()
        total = sum(
            index.hit_profit(pos, head)
            for pos in TransactionIndex.iter_bits(hits_mask)
        )
        expected = pessimistic_hits(index.n, hits, 0.25) * (total / hits)
        assert projected_profit(head, cover, index, 0.25) == pytest.approx(
            expected
        )


class TestCutOptimalPrune:
    def test_pruning_never_decreases_projected_profit(self, mined):
        tree = fresh_tree(mined)
        report = cut_optimal_prune(tree, PruneConfig())
        assert report.tree_profit_after >= report.tree_profit_before - 1e-9

    def test_disabled_pruning_keeps_all_nodes(self, mined):
        tree = fresh_tree(mined)
        n_before = len(tree)
        report = cut_optimal_prune(tree, PruneConfig(enabled=False))
        assert report.n_rules_after == n_before
        assert report.n_subtrees_pruned == 0

    def test_report_counts_consistent(self, mined):
        tree = fresh_tree(mined)
        report = cut_optimal_prune(tree, PruneConfig())
        assert report.n_rules_after == len(tree)
        assert report.n_rules_after <= report.n_rules_before
        assert len(report.kept_rules) == report.n_rules_after

    def test_kept_rules_in_rank_order(self, mined):
        tree = fresh_tree(mined)
        report = cut_optimal_prune(tree, PruneConfig())
        keys = [s.rank_key() for s in report.kept_rules]
        assert keys == sorted(keys)

    def test_coverage_still_partitions_after_pruning(self, mined, small_db):
        tree = fresh_tree(mined)
        cut_optimal_prune(tree, PruneConfig())
        union = 0
        for node in tree.nodes():
            assert union & node.cover_mask == 0
            union |= node.cover_mask
        assert union == (1 << len(small_db)) - 1

    def test_default_rule_always_survives(self, mined):
        tree = fresh_tree(mined)
        report = cut_optimal_prune(tree, PruneConfig())
        assert any(s.rule.is_default for s in report.kept_rules)

    def test_local_optimality_of_the_cut(self, mined):
        """No kept internal node would be better off pruned, and no pruning
        decision could be improved by re-expanding (the DP invariant behind
        Theorem 2)."""
        tree = fresh_tree(mined)
        config = PruneConfig()
        cut_optimal_prune(tree, config)
        index = tree.index
        head_ids = {
            node.scored.rule.order: index.gsale_id(node.scored.rule.head)
            for node in tree.nodes()
        }
        for node in tree.nodes():
            if not node.children:
                continue
            subtree_cover = 0
            tree_prof = 0.0
            for member in node.subtree():
                subtree_cover |= member.cover_mask
                tree_prof += projected_profit(
                    head_ids[member.scored.rule.order],
                    member.cover_mask,
                    index,
                    config.cf,
                )
            leaf_prof = projected_profit(
                head_ids[node.scored.rule.order], subtree_cover, index, config.cf
            )
            assert leaf_prof < tree_prof, (
                f"kept node {node.scored.rule.describe()} should have been "
                "pruned"
            )

    def test_aggressive_cf_prunes_at_least_as_much(self, mined):
        lenient = fresh_tree(mined)
        cut_optimal_prune(lenient, PruneConfig(cf=0.4))
        aggressive = fresh_tree(mined)
        cut_optimal_prune(aggressive, PruneConfig(cf=0.01))
        assert len(aggressive) <= len(lenient) + 2  # strong pessimism merges
