"""Regression tests for FitCache's id()-keyed pinning invariant.

``FitCache`` keys entries by ``id()`` of the database / catalog /
hierarchy objects.  An id is only unique among *live* objects, so the
cache must hold a strong reference to every key object for as long as the
entry lives — otherwise a recycled address could silently alias a stale
entry.  These tests assert the invariant directly (``check_pins``), show
that pins actually keep referents alive against the garbage collector,
and demonstrate the failure mode the invariant guards against.
"""

from __future__ import annotations

import gc
import weakref

import pytest

from repro.core.index_cache import FitCache
from repro.core.profit import BinaryProfit, SavingMOA
from repro.core.sales import TransactionDB


@pytest.fixture
def cache():
    return FitCache()


def _subset_db(db):
    """A fresh TransactionDB object over a subset of ``db``'s transactions."""
    return TransactionDB(
        catalog=db.catalog, transactions=list(db.transactions[:30])
    )


class TestPinningInvariant:
    def test_invariant_holds_after_typical_use(self, cache, small_db, small_hierarchy):
        moa = cache.moa_for(small_db.catalog, small_hierarchy, True)
        cache.index_for(small_db, moa, SavingMOA())
        cache.index_for(small_db, moa, BinaryProfit())  # structural twin
        fold = _subset_db(small_db)
        cache.index_for(fold, moa, SavingMOA())
        cache.check_pins()  # every key id belongs to a pinned object

    def test_pins_keep_referents_alive(self, cache, small_db, small_hierarchy):
        fold = _subset_db(small_db)
        moa = cache.moa_for(fold.catalog, small_hierarchy, True)
        cache.index_for(fold, moa, SavingMOA())
        ref = weakref.ref(fold)
        del fold
        gc.collect()
        # The cache's pin must be the thing keeping the fold alive: the
        # id()-based key would otherwise dangle and could be recycled.
        assert ref() is not None
        cache.check_pins()
        cache.clear()
        gc.collect()
        assert ref() is None, "clear() must drop the pins with the entries"

    def test_check_pins_detects_violations(self, cache, small_db, small_hierarchy):
        moa = cache.moa_for(small_db.catalog, small_hierarchy, True)
        cache.index_for(small_db, moa, SavingMOA())
        # Simulate the bug the invariant exists to prevent: entries
        # surviving without their pins.
        cache._pins.clear()
        cache._pinned_ids.clear()
        with pytest.raises(AssertionError, match="not pinned"):
            cache.check_pins()

    def test_clear_resets_everything(self, cache, small_db, small_hierarchy):
        moa = cache.moa_for(small_db.catalog, small_hierarchy, False)
        cache.index_for(small_db, moa, SavingMOA())
        cache.clear()
        assert not cache._pins and not cache._pinned_ids
        cache.check_pins()  # vacuously true on an empty cache
        # The cache is usable again after clearing.
        moa2 = cache.moa_for(small_db.catalog, small_hierarchy, False)
        cache.index_for(small_db, moa2, SavingMOA())
        cache.check_pins()

    def test_pins_are_deduplicated(self, cache, small_db, small_hierarchy):
        for use_moa in (True, False):
            moa = cache.moa_for(small_db.catalog, small_hierarchy, use_moa)
            cache.index_for(small_db, moa, SavingMOA())
            cache.index_for(small_db, moa, BinaryProfit())
        # catalog, hierarchy and db pinned once each, not once per entry.
        assert len(cache._pins) == 3
        assert len(cache._pinned_ids) == 3


class TestSymbolSharingThroughCache:
    def test_folds_share_one_symbol_table(self, cache, small_db, small_hierarchy):
        """Indexes built through one cached MOA share its symbol table."""
        moa = cache.moa_for(small_db.catalog, small_hierarchy, True)
        a = cache.index_for(small_db, moa, SavingMOA())
        fold = _subset_db(small_db)
        b = cache.index_for(fold, moa, SavingMOA())
        twin = cache.index_for(small_db, moa, BinaryProfit())
        assert a.symbols is b.symbols is twin.symbols
