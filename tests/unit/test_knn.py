"""Unit tests for the kNN baseline (Section 5.1)."""

from __future__ import annotations

import pytest

from repro.baselines.knn import KNNRecommender
from repro.core.sales import Sale, Transaction, TransactionDB
from repro.errors import RecommenderError, ValidationError


class TestConstruction:
    def test_k_must_be_positive(self):
        with pytest.raises(ValidationError, match="k"):
            KNNRecommender(k=0)

    def test_feature_space_validated(self):
        with pytest.raises(ValidationError, match="features"):
            KNNRecommender(features="bogus")

    def test_names(self):
        assert KNNRecommender().name == "kNN"
        assert KNNRecommender(profit_post_processing=True).name == "kNN(profit)"
        assert KNNRecommender(name="mine").name == "mine"

    def test_unfitted_recommend_raises(self):
        with pytest.raises(RecommenderError, match="fitted"):
            KNNRecommender().recommend([Sale("Bread", "P1")])

    def test_empty_db_rejected(self, small_catalog):
        empty = TransactionDB(catalog=small_catalog, transactions=[])
        with pytest.raises(ValidationError, match="empty"):
            KNNRecommender().fit(empty)


class TestVoting:
    def test_identical_basket_votes_its_pair(self, small_db):
        knn = KNNRecommender(k=5).fit(small_db)
        pick = knn.recommend([Sale("Bread", "P1")])
        assert (pick.item_id, pick.promo_code) == ("Sunchip", "L")

    def test_perfume_basket_votes_expensive_prices(self, small_db):
        knn = KNNRecommender(k=5).fit(small_db)
        pick = knn.recommend([Sale("Perfume", "P1")])
        assert pick.item_id == "Sunchip"
        assert pick.promo_code in ("M", "H")

    def test_unknown_items_fall_back_to_global_mode(self, small_db):
        knn = KNNRecommender(k=5).fit(small_db)
        pick = knn.recommend([Sale("Ghost", "P1")])
        # (Sunchip, L) is the most common pair in small_db (29×)
        assert (pick.item_id, pick.promo_code) == ("Sunchip", "L")

    def test_model_free_baseline_has_no_size(self, small_db):
        knn = KNNRecommender().fit(small_db)
        assert knn.model_size is None

    def test_item_features_ignore_prices(self, small_catalog):
        # Two training transactions, same item at different bread prices.
        db = TransactionDB(
            small_catalog,
            [
                Transaction(0, (Sale("Bread", "P1"),), Sale("Sunchip", "M")),
                Transaction(1, (Sale("Bread", "P1"),), Sale("Sunchip", "M")),
                Transaction(2, (Sale("Perfume", "P1"),), Sale("Diamond", "D")),
            ],
        )
        items_knn = KNNRecommender(k=1, features="items").fit(db)
        pick = items_knn.recommend([Sale("Bread", "P2")])  # different price
        assert pick.item_id == "Sunchip"

    def test_sales_features_distinguish_prices(self, small_catalog):
        db = TransactionDB(
            small_catalog,
            [
                Transaction(0, (Sale("Bread", "P1"),), Sale("Sunchip", "L")),
                Transaction(1, (Sale("Bread", "P2"),), Sale("Sunchip", "H")),
            ],
        )
        sales_knn = KNNRecommender(k=1, features="sales").fit(db)
        assert sales_knn.recommend([Sale("Bread", "P2")]).promo_code == "H"
        assert sales_knn.recommend([Sale("Bread", "P1")]).promo_code == "L"


class TestProfitPostProcessing:
    def test_picks_most_profitable_neighbor_pair(self, small_catalog):
        db = TransactionDB(
            small_catalog,
            [
                Transaction(0, (Sale("Perfume", "P1"),), Sale("Sunchip", "L")),
                Transaction(1, (Sale("Perfume", "P1"),), Sale("Sunchip", "L")),
                Transaction(2, (Sale("Perfume", "P1"),), Sale("Diamond", "D")),
            ],
        )
        plain = KNNRecommender(k=3).fit(db)
        assert plain.recommend([Sale("Perfume", "P1")]).item_id == "Sunchip"
        greedy = KNNRecommender(k=3, profit_post_processing=True).fit(db)
        assert greedy.recommend([Sale("Perfume", "P1")]).item_id == "Diamond"

    def test_deterministic_given_ties(self, small_db):
        knn = KNNRecommender(k=5, profit_post_processing=True).fit(small_db)
        basket = [Sale("Perfume", "P1")]
        assert knn.recommend(basket) == knn.recommend(basket)
