"""Unit tests for the spillable columnar transaction store.

:class:`~repro.core.engine.store.ChunkedTransactionStore` backs the SON
partitioned miner; these tests pin its durability contract — atomic
manifests, size-checked memmaps that fail *loudly* when truncated,
append-only growth — and the resident-set LRU with its telemetry.
"""

from __future__ import annotations

import json

import pytest

from repro.core.engine.kernel import HAVE_NUMPY
from repro.core.engine.store import ChunkedTransactionStore
from repro.core.moa import MOAHierarchy
from repro.core.profit import BinaryProfit, SavingMOA
from repro.errors import MiningError, SerializationError
from repro.obs import trace as obs

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the out-of-core store needs numpy"
)


@pytest.fixture
def small_store(small_db, small_moa, tmp_path):
    store = ChunkedTransactionStore.build(
        tmp_path / "store",
        small_db,
        small_moa,
        SavingMOA(),
        partition_size=16,
    )
    return store


class TestBuild:
    def test_build_partitions_and_counts(self, small_store, small_db):
        assert small_store.n == len(small_db)
        assert small_store.n_partitions == (len(small_db) + 15) // 16
        sizes = [
            small_store.partition_meta(i)["n"]
            for i in range(small_store.n_partitions)
        ]
        assert sum(sizes) == len(small_db)
        assert all(s <= 16 for s in sizes)

    def test_build_rejects_empty_input(self, small_moa, tmp_path):
        with pytest.raises(MiningError, match="zero transactions"):
            ChunkedTransactionStore.build(
                tmp_path / "s", [], small_moa, SavingMOA()
            )

    def test_build_rejects_bad_partition_size(self, small_db, small_moa, tmp_path):
        with pytest.raises(MiningError, match="partition_size"):
            ChunkedTransactionStore.build(
                tmp_path / "s", small_db, small_moa, SavingMOA(), partition_size=0
            )

    def test_partition_masks_match_index(self, small_store, small_db, small_moa):
        # Partition rows reassembled across the store must equal the
        # in-RAM TransactionIndex masks bit for bit.
        from repro.core.mining import TransactionIndex

        index = TransactionIndex(
            db=small_db, moa=small_moa, profit_model=SavingMOA()
        )
        for gid, mask in index.body_masks.items():
            assembled = 0
            for part in small_store.iter_partitions():
                kernel = part.kernel()
                if gid in kernel.body_rows:
                    row = kernel.row_of(gid)
                    assembled |= (
                        int.from_bytes(row.tobytes(), "little") << part.offset
                    )
            assert assembled == mask, f"gid {gid} mask differs"

    def test_head_profits_align_with_hit_positions(self, small_store, small_moa):
        # Each stored profit row must have exactly one value per hit bit.
        for part in small_store.iter_partitions():
            for hid in part.head_ids:
                assert len(part.head_profits(hid)) == part.head_count(hid)


class TestOpenAndValidation:
    def test_reopen_round_trips(self, small_store, small_moa, tmp_path):
        reopened = ChunkedTransactionStore.open(
            tmp_path / "store", small_moa, SavingMOA()
        )
        assert reopened.n == small_store.n
        assert reopened.n_partitions == small_store.n_partitions
        assert reopened.global_head_counts() == small_store.global_head_counts()

    def test_open_missing_manifest_is_loud(self, small_moa, tmp_path):
        with pytest.raises(SerializationError, match="manifest"):
            ChunkedTransactionStore.open(tmp_path / "nowhere", small_moa, SavingMOA())

    def test_open_rejects_profit_model_mismatch(self, small_store, small_moa, tmp_path):
        with pytest.raises(SerializationError, match="profit"):
            ChunkedTransactionStore.open(
                tmp_path / "store", small_moa, BinaryProfit()
            )

    def test_open_rejects_use_moa_mismatch(
        self, small_store, small_catalog, small_hierarchy, tmp_path
    ):
        no_moa = MOAHierarchy(
            catalog=small_catalog, hierarchy=small_hierarchy, use_moa=False
        )
        with pytest.raises(SerializationError):
            ChunkedTransactionStore.open(tmp_path / "store", no_moa, SavingMOA())

    def test_truncated_body_file_is_loud(self, small_store, small_moa, tmp_path):
        root = tmp_path / "store"
        victim = next(root.glob("p*.body.u64"))
        victim.write_bytes(victim.read_bytes()[:-8])
        reopened = ChunkedTransactionStore.open(root, small_moa, SavingMOA())
        with pytest.raises(SerializationError, match="truncated|size"):
            for i in range(reopened.n_partitions):
                reopened.partition(i)

    def test_truncated_profit_file_is_loud(self, small_store, small_moa, tmp_path):
        root = tmp_path / "store"
        victim = next(root.glob("p*.prof.f64"))
        victim.write_bytes(victim.read_bytes()[:-1])
        reopened = ChunkedTransactionStore.open(root, small_moa, SavingMOA())
        with pytest.raises(SerializationError, match="truncated|size"):
            for i in range(reopened.n_partitions):
                reopened.partition(i)

    def test_missing_partition_file_is_loud(self, small_store, small_moa, tmp_path):
        root = tmp_path / "store"
        next(root.glob("p*.heads.u64")).unlink()
        reopened = ChunkedTransactionStore.open(root, small_moa, SavingMOA())
        with pytest.raises(SerializationError):
            for i in range(reopened.n_partitions):
                reopened.partition(i)

    def test_corrupt_manifest_is_loud(self, small_store, small_moa, tmp_path):
        manifest = tmp_path / "store" / "manifest.json"
        manifest.write_text(manifest.read_text()[:50])
        with pytest.raises(SerializationError):
            ChunkedTransactionStore.open(tmp_path / "store", small_moa, SavingMOA())

    def test_foreign_format_rejected(self, small_store, small_moa, tmp_path):
        manifest = tmp_path / "store" / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["format"] = "something-else"
        manifest.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="format"):
            ChunkedTransactionStore.open(tmp_path / "store", small_moa, SavingMOA())


class TestAppend:
    def test_append_grows_store(self, small_store, small_db):
        n_before, parts_before = small_store.n, small_store.n_partitions
        new = small_store.append(list(small_db)[:20])
        assert small_store.n == n_before + 20
        assert new == list(range(parts_before, small_store.n_partitions))

    def test_append_visible_after_reopen(
        self, small_store, small_db, small_moa, tmp_path
    ):
        small_store.append(list(small_db)[:5])
        reopened = ChunkedTransactionStore.open(
            tmp_path / "store", small_moa, SavingMOA()
        )
        assert reopened.n == small_store.n

    def test_global_head_counts_accumulate(self, small_store, small_db):
        before = small_store.global_head_counts()
        small_store.append(list(small_db))
        after = small_store.global_head_counts()
        assert sum(after.values()) == 2 * sum(before.values())


class TestResidentBudget:
    def test_lru_evicts_over_budget(self, small_db, small_moa, tmp_path):
        # A budget big enough for one partition but not all of them.
        one_part = ChunkedTransactionStore.build(
            tmp_path / "probe", small_db, small_moa, SavingMOA(), partition_size=16
        ).partition(0)
        budget_mb = (one_part.nbytes + 1) / (1024 * 1024)
        store = ChunkedTransactionStore.build(
            tmp_path / "store",
            small_db,
            small_moa,
            SavingMOA(),
            partition_size=16,
            max_resident_mb=budget_mb,
        )
        with obs.tracing("t") as trace:
            for i in range(store.n_partitions):
                store.partition(i)
        stats = store.stats()
        assert stats["resident_partitions"] < store.n_partitions
        assert stats["resident_bytes"] <= stats["resident_budget_bytes"]
        cache = trace.caches["store.partitions"]
        assert cache["evictions"] >= 1
        assert cache["loads"] == store.n_partitions

    def test_at_least_one_partition_stays_resident(
        self, small_db, small_moa, tmp_path
    ):
        # Even an absurdly small budget must keep the working partition.
        store = ChunkedTransactionStore.build(
            tmp_path / "store",
            small_db,
            small_moa,
            SavingMOA(),
            partition_size=16,
            max_resident_mb=1e-9,
        )
        for i in range(store.n_partitions):
            assert store.partition(i).n > 0
        assert store.stats()["resident_partitions"] == 1

    def test_repeated_access_hits_cache(self, small_store):
        with obs.tracing("t") as trace:
            small_store.partition(0)
            small_store.partition(0)
        assert trace.caches["store.partitions"]["hits"] >= 1

    def test_invalid_budget_rejected(self, small_db, small_moa, tmp_path):
        with pytest.raises(MiningError, match="max_resident_mb"):
            ChunkedTransactionStore.build(
                tmp_path / "s",
                small_db,
                small_moa,
                SavingMOA(),
                partition_size=16,
                max_resident_mb=0,
            )


class TestStats:
    def test_stats_shape(self, small_store):
        stats = small_store.stats()
        assert set(stats) == {
            "n_transactions",
            "n_partitions",
            "partition_size",
            "spilled_bytes",
            "resident_bytes",
            "resident_partitions",
            "resident_budget_bytes",
        }
        assert stats["n_transactions"] == small_store.n
        assert stats["spilled_bytes"] > 0

    def test_stats_json_serializable(self, small_store):
        json.dumps(small_store.stats())

    def test_build_counts_spilled_bytes(self, small_db, small_moa, tmp_path):
        with obs.tracing("t") as trace:
            ChunkedTransactionStore.build(
                tmp_path / "s", small_db, small_moa, SavingMOA(), partition_size=16
            )
        assert trace.counters["store.spilled_bytes"] > 0
