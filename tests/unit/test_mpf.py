"""Unit tests for the MPF recommender (Definitions 6–7)."""

from __future__ import annotations

import pytest

from repro.core.generalized import GSale
from repro.core.mining import MinerConfig, mine_rules
from repro.core.mpf import MPFRecommender
from repro.core.profit import SavingMOA
from repro.core.rules import Rule, RuleStats, ScoredRule
from repro.core.sales import Sale
from repro.errors import ValidationError


@pytest.fixture
def recommender(small_db, small_moa):
    result = mine_rules(
        small_db,
        small_moa,
        SavingMOA(),
        MinerConfig(min_support=0.05, max_body_size=2),
    )
    return MPFRecommender(result.all_rules, small_moa)


def make_scored(body, head, prof_re, order, moa_total=100):
    n_matched = 10
    return ScoredRule(
        rule=Rule(body=frozenset(body), head=head, order=order),
        stats=RuleStats(
            n_matched=n_matched,
            n_hits=5,
            rule_profit=prof_re * n_matched,
            n_total=moa_total,
        ),
    )


class TestConstruction:
    def test_requires_exactly_one_default(self, small_moa):
        head = GSale.promo_form("Sunchip", "L")
        no_default = [make_scored([GSale.item("Bread")], head, 1.0, 0)]
        with pytest.raises(ValidationError, match="default"):
            MPFRecommender(no_default, small_moa)
        two_defaults = [
            make_scored([], head, 1.0, 0),
            make_scored([], head, 2.0, 1),
        ]
        with pytest.raises(ValidationError, match="default"):
            MPFRecommender(two_defaults, small_moa)

    def test_rules_sorted_by_rank(self, recommender):
        keys = [s.rank_key() for s in recommender.ranked_rules]
        assert keys == sorted(keys)


class TestRecommendation:
    def test_highest_ranked_matching_rule_selected(self, small_moa):
        head_cheap = GSale.promo_form("Sunchip", "L")
        head_mid = GSale.promo_form("Sunchip", "M")
        bread = GSale.item("Bread")
        rules = [
            make_scored([], head_cheap, 0.5, 0),
            make_scored([bread], head_mid, 2.0, 1),
        ]
        rec = MPFRecommender(rules, small_moa)
        picked = rec.recommend([Sale("Bread", "P1")])
        assert (picked.item_id, picked.promo_code) == ("Sunchip", "M")
        fallback = rec.recommend([Sale("Perfume", "P1")])
        assert (fallback.item_id, fallback.promo_code) == ("Sunchip", "L")

    def test_body_matches_via_generalization(self, small_moa):
        grocery = GSale.concept("Grocery")
        rules = [
            make_scored([], GSale.promo_form("Sunchip", "L"), 0.1, 0),
            make_scored([grocery], GSale.promo_form("Sunchip", "M"), 5.0, 1),
        ]
        rec = MPFRecommender(rules, small_moa)
        # Bread is under Grocery, so the concept rule fires.
        picked = rec.recommend([Sale("Bread", "P2")])
        assert picked.promo_code == "M"

    def test_recommendation_carries_rule(self, recommender):
        picked = recommender.recommend([Sale("Perfume", "P1")])
        assert picked.rule is not None
        assert picked.rule.rule.head.node == picked.item_id

    def test_default_covers_unmatched_basket(self, recommender):
        # A basket of items the miner never saw still gets a recommendation.
        picked = recommender.recommend([Sale("Bread", "P2")])
        assert picked.item_id in ("Sunchip", "Diamond")

    def test_matching_rules_rank_ordered(self, recommender):
        matches = recommender.matching_rules([Sale("Perfume", "P1")])
        keys = [s.rank_key() for s in matches]
        assert keys == sorted(keys)
        assert any(s.rule.is_default for s in matches)

    def test_recommend_many(self, recommender):
        baskets = [[Sale("Perfume", "P1")], [Sale("Bread", "P1")]]
        assert len(recommender.recommend_many(baskets)) == 2


class TestTopK:
    def test_distinct_pairs(self, recommender):
        picks = recommender.recommend_top_k([Sale("Perfume", "P1")], k=3)
        pairs = [(p.item_id, p.promo_code) for p in picks]
        assert len(pairs) == len(set(pairs))
        assert 1 <= len(picks) <= 3

    def test_first_pick_equals_single_recommendation(self, recommender):
        basket = [Sale("Perfume", "P1")]
        single = recommender.recommend(basket)
        top = recommender.recommend_top_k(basket, k=1)[0]
        assert (single.item_id, single.promo_code) == (top.item_id, top.promo_code)

    def test_k_validation(self, recommender):
        with pytest.raises(ValidationError, match="k"):
            recommender.recommend_top_k([Sale("Perfume", "P1")], k=0)
        with pytest.raises(ValidationError, match="k"):
            recommender.recommend_top_k_many([[Sale("Perfume", "P1")]], k=0)

    def test_naive_matches_indexed(self, recommender):
        for basket in ([Sale("Perfume", "P1")], [Sale("Bread", "P1")], []):
            for k in (1, 2, 5):
                indexed = recommender.recommend_top_k(basket, k)
                naive = recommender.recommend_top_k(basket, k, naive=True)
                assert [(p.item_id, p.promo_code) for p in indexed] == [
                    (p.item_id, p.promo_code) for p in naive
                ]

    def test_prefix_property(self, recommender):
        basket = [Sale("Perfume", "P1")]
        small = recommender.recommend_top_k(basket, 1)
        large = recommender.recommend_top_k(basket, 4)
        assert [(p.item_id, p.promo_code) for p in small] == [
            (p.item_id, p.promo_code) for p in large[: len(small)]
        ]


class TestTopKMany:
    def test_matches_per_call_loop(self, recommender):
        baskets = [
            [Sale("Perfume", "P1")],
            [Sale("Bread", "P1")],
            [Sale("Bread", "P2")],
            [],
        ]
        batched = recommender.recommend_top_k_many(baskets, 3)
        looped = [recommender.recommend_top_k(b, 3) for b in baskets]
        assert [
            [(p.item_id, p.promo_code) for p in ranked] for ranked in batched
        ] == [
            [(p.item_id, p.promo_code) for p in ranked] for ranked in looped
        ]

    def test_repeat_baskets_hit_the_memo(self, recommender):
        from repro import obs

        basket = [Sale("Perfume", "P1")]
        with obs.tracing("topk") as trace:
            recommender.recommend_top_k_many([basket, basket, basket], 2)
        stats = trace.caches["serve.topk_memo"]
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert trace.counters["serve.topk_baskets"] == 3

    def test_memo_keyed_by_k(self, recommender):
        basket = [Sale("Perfume", "P1")]
        recommender.recommend_top_k_many([basket], 1)
        recommender.recommend_top_k_many([basket], 3)
        keys = {k for _, k in recommender._topk_memo}
        assert keys == {1, 3}

    def test_caller_mutation_does_not_corrupt_memo(self, recommender):
        basket = [Sale("Perfume", "P1")]
        (first,) = recommender.recommend_top_k_many([basket], 2)
        expected = [(p.item_id, p.promo_code) for p in first]
        first.clear()  # abuse the returned list
        (second,) = recommender.recommend_top_k_many([basket], 2)
        assert [(p.item_id, p.promo_code) for p in second] == expected

    def test_lru_evicts_single_coldest_entry(self, recommender, monkeypatch):
        from repro import obs

        monkeypatch.setattr(MPFRecommender, "_MEMO_LIMIT", 2)
        baskets = [
            [Sale("Perfume", "P1")],
            [Sale("Bread", "P1")],
            [Sale("Bread", "P2")],
        ]
        with obs.tracing("topk") as trace:
            recommender.recommend_top_k_many(baskets, 2)
        stats = trace.caches["serve.topk_memo"]
        assert stats["evictions"] == 1
        assert stats["entries"] == 2


class TestIntrospection:
    def test_model_size(self, recommender):
        assert recommender.model_size == len(recommender.ranked_rules)

    def test_explain_mentions_rule_and_basket(self, recommender):
        text = recommender.explain([Sale("Perfume", "P1")])
        assert "Perfume" in text
        assert "selected rule" in text


class TestBasketMemoLRU:
    """The serving memo evicts one LRU entry, never the whole dict.

    Regression for the long-lived-serving defect where hitting
    ``_MEMO_LIMIT`` wholesale-cleared the memo, cold-starting every
    basket's match at once under sustained traffic.
    """

    def test_lru_evicts_single_coldest_entry(self, recommender, monkeypatch):
        monkeypatch.setattr(MPFRecommender, "_MEMO_LIMIT", 2)
        basket_a = [Sale("Perfume", "P1")]
        basket_b = [Sale("Bread", "P1")]
        basket_c = [Sale("Bread", "P2")]
        (rec_a,) = recommender.recommend_many([basket_a])
        (rec_b,) = recommender.recommend_many([basket_b])
        # Touch A so B becomes the least recently used entry.
        (hit_a,) = recommender.recommend_many([basket_a])
        assert hit_a is rec_a
        # Inserting C at the limit evicts exactly B; A survives.
        recommender.recommend_many([basket_c])
        assert len(recommender._batch_memo) == 2
        (survivor_a,) = recommender.recommend_many([basket_a])
        assert survivor_a is rec_a  # same object: memo entry survived
        (refetched_b,) = recommender.recommend_many([basket_b])
        assert refetched_b is not rec_b  # B was evicted and re-matched

    def test_eviction_traced_not_cleared(self, recommender, monkeypatch):
        from repro import obs

        monkeypatch.setattr(MPFRecommender, "_MEMO_LIMIT", 1)
        baskets = [
            [Sale("Perfume", "P1")],
            [Sale("Bread", "P1")],
            [Sale("Bread", "P2")],
        ]
        with obs.tracing("serve") as trace:
            recommender.recommend_many(baskets)
        stats = trace.caches["serve.basket_memo"]
        assert stats["evictions"] == 2
        assert "clears" not in stats
        assert stats["entries"] == 1


class TestSingleCallTelemetryParity:
    """``recommend(b)`` must count and memoize like ``recommend_many([b])``.

    Regression for daemon metrics undercounting (and re-matching) when
    traffic arrives one basket at a time: the single-call path now routes
    through the batch memo/counter path.
    """

    def _fresh_recommender(self, small_db, small_catalog, small_hierarchy):
        from repro.core.moa import MOAHierarchy

        # A fresh MOA instance means a fresh symbol table, so the two
        # recommenders under comparison share no serving caches.
        moa = MOAHierarchy(catalog=small_catalog, hierarchy=small_hierarchy)
        result = mine_rules(
            small_db,
            moa,
            SavingMOA(),
            MinerConfig(min_support=0.05, max_body_size=2),
        )
        return MPFRecommender(result.all_rules, moa)

    def test_traced_counts_identical(
        self, small_db, small_catalog, small_hierarchy
    ):
        from repro import obs

        basket = [Sale("Perfume", "P1")]
        single = self._fresh_recommender(
            small_db, small_catalog, small_hierarchy
        )
        batch = self._fresh_recommender(
            small_db, small_catalog, small_hierarchy
        )
        with obs.tracing("single") as trace_single:
            rec_single = single.recommend(basket)
        with obs.tracing("batch") as trace_batch:
            (rec_batch,) = batch.recommend_many([basket])
        assert (rec_single.item_id, rec_single.promo_code) == (
            rec_batch.item_id,
            rec_batch.promo_code,
        )
        assert trace_single.counters == trace_batch.counters
        assert trace_single.caches == trace_batch.caches
        assert trace_single.counters["serve.baskets"] == 1

    def test_single_calls_populate_the_batch_memo(self, recommender):
        basket = [Sale("Perfume", "P1")]
        first = recommender.recommend(basket)
        second = recommender.recommend(basket)
        assert second is first  # served from the shared memo
        (from_batch,) = recommender.recommend_many([basket])
        assert from_batch is first
