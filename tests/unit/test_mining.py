"""Unit tests for the generalized association-rule miner (Section 3.1)."""

from __future__ import annotations

import math

import pytest

from repro.core.generalized import GKind, GSale
from repro.core.mining import MinerConfig, TransactionIndex, mine_rules
from repro.core.moa import MOAHierarchy
from repro.core.profit import BinaryProfit, SavingMOA
from repro.core.sales import Sale, Transaction, TransactionDB
from repro.errors import MiningError, ValidationError


@pytest.fixture
def mined(small_db, small_moa):
    return mine_rules(
        small_db,
        small_moa,
        SavingMOA(),
        MinerConfig(min_support=0.05, max_body_size=2),
    )


class TestMinerConfig:
    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_min_support_bounds(self, bad):
        with pytest.raises(ValidationError, match="min_support"):
            MinerConfig(min_support=bad)

    def test_other_bounds(self):
        with pytest.raises(ValidationError, match="min_confidence"):
            MinerConfig(min_confidence=1.2)
        with pytest.raises(ValidationError, match="min_rule_profit"):
            MinerConfig(min_rule_profit=-1)
        with pytest.raises(ValidationError, match="max_body_size"):
            MinerConfig(max_body_size=0)

    def test_backend_and_jobs_bounds(self):
        with pytest.raises(ValidationError, match="backend"):
            MinerConfig(backend="sparse")
        with pytest.raises(ValidationError, match="n_jobs"):
            MinerConfig(n_jobs=0)
        # The valid settings construct fine without resolving anything.
        assert MinerConfig(backend="dense", n_jobs=4).n_jobs == 4
        assert MinerConfig().backend == "auto"


class TestTransactionIndex:
    def test_empty_db_rejected(self, small_catalog, small_moa):
        empty = TransactionDB(catalog=small_catalog, transactions=[])
        with pytest.raises(MiningError, match="empty"):
            TransactionIndex(db=empty, moa=small_moa, profit_model=SavingMOA())

    def test_masks_count_transactions(self, small_db, small_moa):
        index = TransactionIndex(
            db=small_db, moa=small_moa, profit_model=SavingMOA()
        )
        perfume_id = index.gsale_id(GSale.item("Perfume"))
        assert index.body_masks[perfume_id].bit_count() == 31

    def test_head_profits_follow_profit_model(self, small_db, small_moa):
        index = TransactionIndex(
            db=small_db, moa=small_moa, profit_model=SavingMOA()
        )
        low = index.gsale_id(GSale.promo_form("Sunchip", "L"))
        # every hit with head L credits the L profit of $1.8 per unit
        for pos in TransactionIndex.iter_bits(index.head_hits_mask(low)):
            assert index.hit_profit(pos, low) == pytest.approx(1.8)

    def test_iter_bits(self):
        assert list(TransactionIndex.iter_bits(0b101001)) == [0, 3, 5]
        assert list(TransactionIndex.iter_bits(0)) == []

    def test_body_mask_intersection(self, small_db, small_moa):
        index = TransactionIndex(
            db=small_db, moa=small_moa, profit_model=SavingMOA()
        )
        perfume = index.gsale_id(GSale.item("Perfume"))
        bread = index.gsale_id(GSale.item("Bread"))
        both = index.body_mask([perfume, bread])
        assert both.bit_count() == 1  # only the Diamond transaction

    def test_unknown_gsale_raises(self, small_db, small_moa):
        index = TransactionIndex(
            db=small_db, moa=small_moa, profit_model=SavingMOA()
        )
        with pytest.raises(MiningError, match="not present"):
            index.gsale_id(GSale.item("Ghost"))


class TestMineRules:
    def test_rule_supports_respect_threshold(self, mined, small_db):
        minsup_count = math.ceil(0.05 * len(small_db))
        for scored in mined.scored_rules:
            assert scored.stats.n_hits >= minsup_count

    def test_bodies_are_ancestor_free(self, mined, small_moa):
        for scored in mined.scored_rules:
            assert small_moa.is_ancestor_free(scored.rule.body)

    def test_heads_never_appear_in_bodies(self, mined):
        for scored in mined.scored_rules:
            for g in scored.rule.body:
                assert g.node != scored.rule.head.node

    def test_expected_rule_found(self, mined):
        # {Perfume} → ⟨Sunchip @ M⟩ captures the structure of small_db.
        described = {s.rule.describe() for s in mined.scored_rules}
        assert "{Perfume} -> <Sunchip @ M>" in described

    def test_rule_stats_verifiable_by_brute_force(self, mined, small_db, small_moa):
        for scored in mined.scored_rules[:25]:
            body, head = scored.rule.body, scored.rule.head
            matched = hits = 0
            profit = 0.0
            for t in small_db:
                gsales = small_moa.generalizations_of_basket(t.nontarget_sales)
                if not body <= gsales:
                    continue
                matched += 1
                if small_moa.hits(head, t.target_sale):
                    hits += 1
                    profit += SavingMOA().credited_profit(
                        head, t.target_sale, small_db.catalog
                    )
            assert scored.stats.n_matched == matched
            assert scored.stats.n_hits == hits
            assert scored.stats.rule_profit == pytest.approx(profit)

    def test_generation_orders_unique(self, mined):
        orders = [s.rule.order for s in mined.all_rules]
        assert len(orders) == len(set(orders))

    def test_default_rule_maximizes_recommendation_profit(
        self, mined, small_db, small_moa
    ):
        default = mined.default_rule
        assert default.rule.is_default
        # brute force over all candidate heads
        best = -1.0
        for head in small_moa.all_candidate_heads():
            total = sum(
                SavingMOA().profit(head, t.target_sale, small_moa)
                for t in small_db
            )
            best = max(best, total)
        assert default.stats.rule_profit == pytest.approx(best)

    def test_min_confidence_filters(self, small_db, small_moa):
        strict = mine_rules(
            small_db,
            small_moa,
            SavingMOA(),
            MinerConfig(min_support=0.05, min_confidence=0.9, max_body_size=2),
        )
        assert all(s.stats.confidence >= 0.9 for s in strict.scored_rules)

    def test_min_rule_profit_filters(self, small_db, small_moa):
        strict = mine_rules(
            small_db,
            small_moa,
            SavingMOA(),
            MinerConfig(min_support=0.05, min_rule_profit=50.0, max_body_size=2),
        )
        assert all(s.stats.rule_profit >= 50.0 for s in strict.scored_rules)

    def test_max_body_size_limits(self, small_db, small_moa):
        shallow = mine_rules(
            small_db, small_moa, SavingMOA(), MinerConfig(min_support=0.05, max_body_size=1)
        )
        assert all(s.rule.body_size <= 1 for s in shallow.scored_rules)

    def test_binary_profit_counts_hits(self, small_db, small_moa):
        result = mine_rules(
            small_db,
            small_moa,
            BinaryProfit(),
            MinerConfig(min_support=0.05, max_body_size=1),
        )
        for scored in result.scored_rules:
            assert scored.stats.rule_profit == pytest.approx(scored.stats.n_hits)

    def test_higher_support_yields_fewer_rules(self, small_db, small_moa):
        few = mine_rules(
            small_db, small_moa, SavingMOA(), MinerConfig(min_support=0.4, max_body_size=2)
        )
        many = mine_rules(
            small_db, small_moa, SavingMOA(), MinerConfig(min_support=0.05, max_body_size=2)
        )
        assert len(few.scored_rules) < len(many.scored_rules)

    def test_without_moa_no_cross_price_bodies(self, small_db, small_catalog, small_hierarchy):
        plain = MOAHierarchy(small_catalog, small_hierarchy, use_moa=False)
        result = mine_rules(
            small_db, plain, SavingMOA(), MinerConfig(min_support=0.05, max_body_size=2)
        )
        # P2 bread sales exist only in one transaction; the P1 promo form
        # must not pick up P2 sales without MOA.
        for scored in result.scored_rules:
            if GSale.promo_form("Bread", "P1") in scored.rule.body:
                assert scored.stats.n_matched <= 29

    def test_candidate_explosion_guard(self, small_db, small_moa):
        config = MinerConfig(
            min_support=0.02, max_body_size=3, max_candidates_per_level=1
        )
        with pytest.raises(MiningError, match="explosion"):
            mine_rules(small_db, small_moa, SavingMOA(), config)


class LeakyMOA(MOAHierarchy):
    """Generalization engine that leaks a target promo-form into baskets.

    ``Rule.__post_init__`` forbids a body promo-form naming the head's
    item.  A consistent catalog can never produce that combination (target
    items are not sold as non-target sales), but nothing in the
    :class:`MOAHierarchy` contract prevents a generalization engine from
    lifting one in — this subclass models that, reproducing the crash the
    miner's (body, head) skip-guard fixes.
    """

    def generalizations_of_sale(self, sale):
        """Every real generalization plus a leaked ``<Sunchip @ L>``."""
        return super().generalizations_of_sale(sale) | {
            GSale.promo_form("Sunchip", "L")
        }


class TestBodyHeadSeparationGuard:
    def test_rule_invariant_rejects_head_item_in_body(self):
        # The invariant the mining guard protects: a promo-form body member
        # must not name the head's item.
        from repro.core.rules import Rule

        with pytest.raises(ValidationError, match="head's target item"):
            Rule(
                body=frozenset([GSale.promo_form("Sunchip", "L")]),
                head=GSale.promo_form("Sunchip", "M"),
                order=0,
            )

    def test_mining_survives_leaked_target_promo_form(
        self, small_db, small_catalog, small_hierarchy
    ):
        leaky = LeakyMOA(small_catalog, small_hierarchy, use_moa=True)
        # <Sunchip @ L> now appears in every extended transaction, so it
        # becomes a frequent body; before the skip-guard this crashed with
        # ValidationError when paired with a Sunchip head.
        result = mine_rules(
            small_db,
            leaky,
            SavingMOA(),
            MinerConfig(min_support=0.05, max_body_size=2),
        )
        for scored in result.scored_rules:
            for g in scored.rule.body:
                assert not (
                    g.kind is GKind.PROMO and g.node == scored.rule.head.node
                )

    def test_leaked_body_still_allowed_with_other_item_heads(
        self, small_db, small_catalog, small_hierarchy
    ):
        leaky = LeakyMOA(small_catalog, small_hierarchy, use_moa=True)
        # At minsup=1 transaction the Diamond head is frequent; the leaked
        # Sunchip body may legally pair with it — only Sunchip heads are
        # blocked for that body.
        result = mine_rules(
            small_db,
            leaky,
            SavingMOA(),
            MinerConfig(min_support=0.01, max_body_size=1),
        )
        leaked = GSale.promo_form("Sunchip", "L")
        heads_for_leaked_body = {
            s.rule.head.node
            for s in result.scored_rules
            if leaked in s.rule.body
        }
        assert "Diamond" in heads_for_leaked_body
        assert "Sunchip" not in heads_for_leaked_body


class TestDefaultRuleTieBreak:
    def test_tie_keeps_most_specific_head(self, small_catalog, small_hierarchy):
        # All target sales record the top price H.  Under MOA every Sunchip
        # head (L, M, H) then hits every transaction, so with binary profit
        # all three tie on total credit; the most specific head — the
        # least favorable price, generated first — must win.
        transactions = [
            Transaction(tid, (Sale("Bread", "P1"),), Sale("Sunchip", "H"))
            for tid in range(10)
        ]
        db = TransactionDB(catalog=small_catalog, transactions=transactions)
        moa = MOAHierarchy(small_catalog, small_hierarchy, use_moa=True)
        result = mine_rules(
            db,
            moa,
            BinaryProfit(),
            MinerConfig(min_support=0.1, max_body_size=1),
        )
        default = result.default_rule
        assert default.rule.is_default
        assert default.rule.head == GSale.promo_form("Sunchip", "H")
        # The tie is real: every Sunchip head credits every transaction.
        for code in ("L", "M", "H"):
            assert all(
                moa.hits(GSale.promo_form("Sunchip", code), t.target_sale)
                for t in db
            )
