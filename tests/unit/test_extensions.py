"""Unit tests for the paper's extension features.

Covers the "more greedy estimation" profit model (Section 3.1's closing
remark) and multi-pair top-k evaluation (Section 2's multi-rule variant).
"""

from __future__ import annotations

import pytest

from repro.core.generalized import GSale
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.profit import SavingMOA
from repro.core.sales import Sale
from repro.errors import EvaluationError
from repro.eval.behavior import BehaviorAdjustedProfit, behavior_x2_y30
from repro.eval.metrics import EvalConfig, evaluate, evaluate_top_k


class TestBehaviorAdjustedProfit:
    def test_scales_by_expected_multiplier(self, small_catalog):
        base = SavingMOA()
        greedy = BehaviorAdjustedProfit(base, behavior_x2_y30())
        head = GSale.promo_form("Sunchip", "L")
        sale = Sale("Sunchip", "H")  # gap 2 → expected multiplier 1.3
        assert greedy.credited_profit(head, sale, small_catalog) == (
            pytest.approx(base.credited_profit(head, sale, small_catalog) * 1.3)
        )

    def test_exact_match_unchanged(self, small_catalog):
        base = SavingMOA()
        greedy = BehaviorAdjustedProfit(base, behavior_x2_y30())
        head = GSale.promo_form("Sunchip", "M")
        sale = Sale("Sunchip", "M")  # gap 0 → no lift
        assert greedy.credited_profit(head, sale, small_catalog) == (
            pytest.approx(base.credited_profit(head, sale, small_catalog))
        )

    def test_name_composes(self):
        greedy = BehaviorAdjustedProfit(SavingMOA(), behavior_x2_y30())
        assert greedy.name == "saving×(x=2,y=30%)"

    def test_usable_for_model_building(self, small_hierarchy, small_db):
        miner = ProfitMiner(
            small_hierarchy,
            profit_model=BehaviorAdjustedProfit(SavingMOA(), behavior_x2_y30()),
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.05, max_body_size=2)
            ),
        ).fit(small_db)
        assert miner.recommend([Sale("Perfume", "P1")]).item_id == "Sunchip"


class TestTopKEvaluation:
    @pytest.fixture
    def fitted(self, small_hierarchy, small_db):
        return ProfitMiner(
            small_hierarchy,
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.05, max_body_size=2)
            ),
        ).fit(small_db)

    def test_top1_matches_single_recommendation_hits(
        self, fitted, small_db, small_hierarchy
    ):
        single = evaluate(fitted, small_db, small_hierarchy)
        top1 = evaluate_top_k(
            fitted.require_fitted_recommender(), small_db, small_hierarchy, k=1
        )
        assert top1.hit_rate == pytest.approx(single.hit_rate)

    def test_hit_rate_monotone_in_k(self, fitted, small_db, small_hierarchy):
        recommender = fitted.require_fitted_recommender()
        rates = [
            evaluate_top_k(recommender, small_db, small_hierarchy, k=k).hit_rate
            for k in (1, 2, 4)
        ]
        assert rates[0] <= rates[1] <= rates[2]

    def test_gain_monotone_in_k(self, fitted, small_db, small_hierarchy):
        recommender = fitted.require_fitted_recommender()
        gains = [
            evaluate_top_k(recommender, small_db, small_hierarchy, k=k).gain
            for k in (1, 3)
        ]
        assert gains[0] <= gains[1] + 1e-9

    def test_naive_passthrough_matches_indexed(
        self, fitted, small_db, small_hierarchy
    ):
        recommender = fitted.require_fitted_recommender()
        for k in (1, 2, 4):
            indexed = evaluate_top_k(
                recommender, small_db, small_hierarchy, k=k
            )
            naive = evaluate_top_k(
                recommender, small_db, small_hierarchy, k=k, naive=True
            )
            assert [
                (o.tid, o.hit, o.achieved_profit) for o in indexed.outcomes
            ] == [(o.tid, o.hit, o.achieved_profit) for o in naive.outcomes]

    def test_result_name_carries_k(self, fitted, small_db, small_hierarchy):
        result = evaluate_top_k(
            fitted.require_fitted_recommender(), small_db, small_hierarchy, k=2
        )
        assert "top-2" in result.recommender_name

    def test_validation(self, fitted, small_db, small_hierarchy):
        recommender = fitted.require_fitted_recommender()
        with pytest.raises(EvaluationError, match="k"):
            evaluate_top_k(recommender, small_db, small_hierarchy, k=0)
        with pytest.raises(EvaluationError, match="MPFRecommender"):
            evaluate_top_k(fitted, small_db, small_hierarchy, k=1)  # type: ignore[arg-type]


def _filtered_serving_view(recommender, keep):
    """A serving view of ``recommender`` with only the rules ``keep`` admits.

    Simulates a filtered rule store (e.g. a store restricted to a promo
    subset, dropping the default rule): mutate the ranked list in place
    and drop every derived serving structure so the compiled index and
    memos rebuild from the filtered rules.
    """
    recommender.ranked_rules = [
        scored for scored in recommender.ranked_rules if keep(scored)
    ]
    recommender._compiled = None
    recommender._index = None
    recommender._batch_memo.clear()
    recommender._topk_memo.clear()
    return recommender


class TestTopKWithoutDefaultRule:
    """Regression: a default-less model must eval as misses, not crash.

    ``evaluate_top_k`` used to read ``offers[0]`` before checking the
    list was non-empty, so the first basket no rule matched raised
    IndexError instead of scoring a miss.
    """

    @pytest.fixture
    def defaultless(self, small_hierarchy, small_db):
        fitted = ProfitMiner(
            small_hierarchy,
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.05, max_body_size=2)
            ),
        ).fit(small_db)
        # Keep only rules whose body mentions Perfume (or its concept), so
        # the 29 bread-only baskets of small_db match nothing at all.
        return _filtered_serving_view(
            fitted.require_fitted_recommender(),
            keep=lambda scored: any(
                gsale.node in ("Perfume", "Beauty")
                for gsale in scored.rule.body
            ),
        )

    def test_empty_offer_list_served(self, defaultless):
        # A basket of items no mined rule mentions gets no offers at all.
        assert defaultless.recommend_top_k([Sale("Bread", "P2")], k=3) == []

    def test_eval_records_no_offer_miss(
        self, defaultless, small_db, small_hierarchy
    ):
        from repro.eval.metrics import NO_OFFER

        result = evaluate_top_k(defaultless, small_db, small_hierarchy, k=2)
        uncovered = [
            outcome
            for outcome in result.outcomes
            if outcome.recommendation == NO_OFFER
        ]
        assert uncovered, "expected at least one no-offer basket"
        assert all(not outcome.hit for outcome in uncovered)
        assert all(
            outcome.achieved_profit == 0.0 for outcome in uncovered
        )
        assert len(result.outcomes) == len(small_db)

    def test_naive_path_agrees_on_defaultless_model(
        self, defaultless, small_db, small_hierarchy
    ):
        indexed = evaluate_top_k(defaultless, small_db, small_hierarchy, k=2)
        naive = evaluate_top_k(
            defaultless, small_db, small_hierarchy, k=2, naive=True
        )
        assert [
            (o.tid, o.hit, o.achieved_profit) for o in indexed.outcomes
        ] == [(o.tid, o.hit, o.achieved_profit) for o in naive.outcomes]
