"""Unit tests for the MPI baseline (Section 5.1)."""

from __future__ import annotations

import pytest

from repro.baselines.mpi import MPIRecommender
from repro.core.sales import Sale, Transaction, TransactionDB
from repro.errors import RecommenderError, ValidationError


class TestMPI:
    def test_unfitted_raises(self):
        with pytest.raises(RecommenderError, match="fitted"):
            MPIRecommender().recommend([])

    def test_empty_db_rejected(self, small_catalog):
        with pytest.raises(ValidationError, match="empty"):
            MPIRecommender().fit(TransactionDB(small_catalog, []))

    def test_picks_max_total_recorded_profit(self, small_catalog):
        # 3 × Sunchip@H = $9 total beats 1 × Diamond@D = $40? No: Diamond wins.
        db = TransactionDB(
            small_catalog,
            [
                Transaction(0, (Sale("Bread", "P1"),), Sale("Sunchip", "H")),
                Transaction(1, (Sale("Bread", "P1"),), Sale("Sunchip", "H")),
                Transaction(2, (Sale("Bread", "P1"),), Sale("Sunchip", "H")),
                Transaction(3, (Sale("Perfume", "P1"),), Sale("Diamond", "D")),
            ],
        )
        mpi = MPIRecommender().fit(db)
        assert mpi.chosen_pair == ("Diamond", "D")
        assert mpi.chosen_pair_profit == pytest.approx(40.0)

    def test_frequency_can_beat_unit_profit(self, small_catalog):
        transactions = [
            Transaction(i, (Sale("Bread", "P1"),), Sale("Sunchip", "H"))
            for i in range(20)
        ]
        transactions.append(
            Transaction(20, (Sale("Perfume", "P1"),), Sale("Diamond", "D"))
        )
        mpi = MPIRecommender().fit(TransactionDB(small_catalog, transactions))
        assert mpi.chosen_pair == ("Sunchip", "H")  # 20×$3 > 1×$40

    def test_constant_recommendation_ignores_basket(self, small_db):
        mpi = MPIRecommender().fit(small_db)
        a = mpi.recommend([Sale("Bread", "P1")])
        b = mpi.recommend([Sale("Perfume", "P1")])
        assert (a.item_id, a.promo_code) == (b.item_id, b.promo_code)

    def test_quantity_scales_recorded_profit(self, small_catalog):
        db = TransactionDB(
            small_catalog,
            [
                Transaction(
                    0, (Sale("Bread", "P1"),), Sale("Sunchip", "L", quantity=30)
                ),
                Transaction(1, (Sale("Perfume", "P1"),), Sale("Diamond", "D")),
            ],
        )
        mpi = MPIRecommender().fit(db)
        assert mpi.chosen_pair == ("Sunchip", "L")  # 30 × $1.8 = $54 > $40

    def test_model_free(self, small_db):
        assert MPIRecommender().fit(small_db).model_size is None
