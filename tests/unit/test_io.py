"""Unit tests for transaction serialization."""

from __future__ import annotations

import json

import pytest

from repro.data.io import (
    catalog_from_dict,
    catalog_to_dict,
    iter_transactions,
    load_transactions,
    read_catalog,
    save_transactions,
    transaction_from_dict,
    transaction_to_dict,
    write_transactions_stream,
)
from repro.errors import SerializationError


class TestCatalogRoundTrip:
    def test_round_trip(self, small_catalog):
        payload = catalog_to_dict(small_catalog)
        restored = catalog_from_dict(json.loads(json.dumps(payload)))
        assert {i.item_id for i in restored} == {i.item_id for i in small_catalog}
        assert restored.get("Sunchip").is_target
        assert restored.promotion("Sunchip", "M").price == 4.5
        assert restored.promotion("Bread", "P1").packing == 1

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError, match="format"):
            catalog_from_dict({"format": "other", "items": []})

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError, match="malformed"):
            catalog_from_dict(
                {"format": "repro-profit-mining-v1", "items": [{"nope": 1}]}
            )


class TestTransactionRoundTrip:
    def test_round_trip(self, small_db):
        t = small_db[0]
        restored = transaction_from_dict(json.loads(json.dumps(transaction_to_dict(t))))
        assert restored == t

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError, match="malformed"):
            transaction_from_dict({"tid": 0})


class TestFileRoundTrip:
    def test_save_load(self, small_db, tmp_path):
        path = tmp_path / "db.jsonl"
        save_transactions(small_db, path)
        restored = load_transactions(path)
        assert len(restored) == len(small_db)
        assert restored.transactions == small_db.transactions
        assert restored.total_recorded_profit() == pytest.approx(
            small_db.total_recorded_profit()
        )

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SerializationError, match="empty"):
            load_transactions(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SerializationError, match="catalog header"):
            load_transactions(path)

    def test_bad_line_reports_line_number(self, small_db, tmp_path):
        path = tmp_path / "trunc.jsonl"
        save_transactions(small_db, path)
        with path.open("a") as handle:
            handle.write("{broken\n")
        with pytest.raises(SerializationError, match=str(len(small_db) + 2)):
            load_transactions(path)

    def test_blank_lines_tolerated(self, small_db, tmp_path):
        path = tmp_path / "gaps.jsonl"
        save_transactions(small_db, path)
        content = path.read_text().replace("\n", "\n\n", 3)
        path.write_text(content)
        assert len(load_transactions(path)) == len(small_db)


class TestStreaming:
    """The streaming twins must match the batch functions exactly."""

    def test_iter_transactions_matches_load(self, small_db, tmp_path):
        path = tmp_path / "db.jsonl"
        save_transactions(small_db, path)
        streamed = list(iter_transactions(path))
        assert streamed == load_transactions(path).transactions

    def test_write_stream_is_byte_identical_to_save(self, small_db, tmp_path):
        batch_path = tmp_path / "batch.jsonl"
        stream_path = tmp_path / "stream.jsonl"
        save_transactions(small_db, batch_path)
        n = write_transactions_stream(
            stream_path, small_db.catalog, iter(small_db.transactions)
        )
        assert n == len(small_db)
        assert stream_path.read_bytes() == batch_path.read_bytes()

    def test_read_catalog_reads_only_the_header(self, small_db, tmp_path):
        path = tmp_path / "db.jsonl"
        save_transactions(small_db, path)
        # Corrupt every transaction line: the catalog must still read.
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0]] + ["{broken"] * 3) + "\n")
        assert read_catalog(path).target_ids() == small_db.catalog.target_ids()

    def test_iter_transactions_reports_line_numbers(self, small_db, tmp_path):
        path = tmp_path / "trunc.jsonl"
        save_transactions(small_db, path)
        with path.open("a") as handle:
            handle.write("{broken\n")
        with pytest.raises(SerializationError, match=str(len(small_db) + 2)):
            list(iter_transactions(path))

    def test_iter_transactions_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SerializationError, match="empty"):
            list(iter_transactions(path))
