"""Unit tests for the campaign-level portfolio planner."""

from __future__ import annotations

import itertools

import pytest

from repro.campaign import (
    CampaignPlan,
    PlannedOffer,
    plan_campaign,
)
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.sales import Sale
from repro.errors import ValidationError
from repro.whatif import what_if


@pytest.fixture
def recommender(small_hierarchy, small_db):
    fitted = ProfitMiner(
        small_hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.05, max_body_size=2)
        ),
    ).fit(small_db)
    return fitted.require_fitted_recommender()


def _brute_force_optimum(recommender, db, cap):
    """Independent reference: enumerate offer subsets straight off what_if.

    Scores every basket with the what-if kernel directly (no dedup, no
    planner code) and maximizes Σ_b max_{o∈S} E[profit] by brute force.
    """
    per_basket: list[dict[tuple[str, str], float]] = []
    pairs: set[tuple[str, str]] = set()
    for transaction in db:
        scores = {}
        for option in what_if(recommender, transaction.nontarget_sales):
            if option.expected_profit > 1e-9:
                scores[(option.item_id, option.promo_code)] = (
                    option.expected_profit
                )
                pairs.add((option.item_id, option.promo_code))
        per_basket.append(scores)
    best = 0.0
    for r in range(cap + 1):
        for combo in itertools.combinations(sorted(pairs), r):
            value = sum(
                max((scores[p] for p in combo if p in scores), default=0.0)
                for scores in per_basket
            )
            best = max(best, value)
    return best


class TestPlanningSmallWorld:
    def test_exact_matches_brute_force(self, recommender, small_db):
        for cap in (1, 2, 3):
            plan = plan_campaign(
                recommender, small_db, max_offers=cap, method="exact"
            )
            reference = _brute_force_optimum(recommender, small_db, cap)
            assert plan.expected_profit == pytest.approx(reference)
            assert plan.profit_upper_bound == pytest.approx(reference)

    def test_greedy_agrees_with_exact_here(self, recommender, small_db):
        exact = plan_campaign(recommender, small_db, method="exact")
        greedy = plan_campaign(recommender, small_db, method="greedy")
        assert greedy.expected_profit == pytest.approx(exact.expected_profit)
        assert greedy.method == "greedy"
        assert exact.method == "exact"

    def test_greedy_bound_certifies(self, recommender, small_db):
        for cap in (1, 2):
            greedy = plan_campaign(
                recommender, small_db, max_offers=cap, method="greedy"
            )
            exact = plan_campaign(
                recommender, small_db, max_offers=cap, method="exact"
            )
            assert (
                greedy.expected_profit
                <= greedy.profit_upper_bound + 1e-9
            )
            assert (
                exact.expected_profit <= greedy.profit_upper_bound + 1e-9
            )

    def test_auto_picks_exact_at_small_scale(self, recommender, small_db):
        plan = plan_campaign(recommender, small_db, method="auto")
        assert plan.method == "exact"

    def test_per_offer_stats_sum_to_total(self, recommender, small_db):
        plan = plan_campaign(recommender, small_db)
        assert sum(o.expected_profit for o in plan.offers) == pytest.approx(
            plan.expected_profit
        )
        assert sum(o.n_baskets for o in plan.offers) <= plan.n_baskets
        assert plan.n_baskets == len(small_db)

    def test_accepts_explicit_basket_sequences(self, recommender, small_db):
        baskets = [t.nontarget_sales for t in small_db]
        from_db = plan_campaign(recommender, small_db)
        from_lists = plan_campaign(recommender, baskets)
        assert from_lists.expected_profit == pytest.approx(
            from_db.expected_profit
        )

    def test_duplicate_workload_doubles_profit(self, recommender, small_db):
        baskets = [t.nontarget_sales for t in small_db]
        once = plan_campaign(recommender, baskets)
        twice = plan_campaign(recommender, baskets * 2)
        assert twice.expected_profit == pytest.approx(
            2 * once.expected_profit
        )
        # Dedup means the doubled workload adds no distinct baskets.
        assert twice.n_distinct_baskets == once.n_distinct_baskets
        assert twice.n_baskets == 2 * once.n_baskets


class TestConstraints:
    def test_max_offers_respected(self, recommender, small_db):
        for cap in (1, 2):
            plan = plan_campaign(recommender, small_db, max_offers=cap)
            assert len(plan.offers) <= cap

    def test_profit_monotone_in_cap(self, recommender, small_db):
        profits = [
            plan_campaign(recommender, small_db, max_offers=cap).expected_profit
            for cap in (1, 2, 3)
        ]
        assert profits == sorted(profits)

    def test_budget_caps_portfolio_size(self, recommender, small_db):
        plan = plan_campaign(
            recommender, small_db, budget=5.0, offer_cost=2.5
        )
        assert len(plan.offers) <= 2
        broke = plan_campaign(recommender, small_db, budget=0.5)
        assert broke.offers == ()
        assert broke.expected_profit == 0.0

    def test_inventory_respected(self, recommender, small_db):
        unconstrained = plan_campaign(recommender, small_db)
        demand = sum(
            offer.expected_units
            for offer in unconstrained.offers
            if offer.item_id == "Sunchip"
        )
        assert demand > 0
        # A cap below the unconstrained demand must change the plan...
        squeezed = plan_campaign(
            recommender, small_db, inventory={"Sunchip": demand / 2}
        )
        assert sum(
            offer.expected_units
            for offer in squeezed.offers
            if offer.item_id == "Sunchip"
        ) <= demand / 2 + 1e-9
        assert squeezed.expected_profit <= unconstrained.expected_profit + 1e-9
        # ...while a cap above it changes nothing.
        roomy = plan_campaign(
            recommender, small_db, inventory={"Sunchip": demand * 2}
        )
        assert roomy.expected_profit == pytest.approx(
            unconstrained.expected_profit
        )

    def test_unknown_inventory_item_is_inert(self, recommender, small_db):
        base = plan_campaign(recommender, small_db)
        plan = plan_campaign(
            recommender, small_db, inventory={"NotAnItem": 0.0}
        )
        assert plan.expected_profit == pytest.approx(base.expected_profit)


class TestValidationAndLimits:
    def test_rejects_bad_arguments(self, recommender, small_db):
        with pytest.raises(ValidationError, match="method"):
            plan_campaign(recommender, small_db, method="magic")
        with pytest.raises(ValidationError, match="max_offers"):
            plan_campaign(recommender, small_db, max_offers=0)
        with pytest.raises(ValidationError, match="budget"):
            plan_campaign(recommender, small_db, budget=-1.0)
        with pytest.raises(ValidationError, match="offer_cost"):
            plan_campaign(recommender, small_db, offer_cost=0.0)
        with pytest.raises(ValidationError, match="inventory"):
            plan_campaign(recommender, small_db, inventory={"Sunchip": -1.0})
        with pytest.raises(ValidationError, match="basket"):
            plan_campaign(recommender, [])

    def test_exact_over_limit_raises_auto_degrades(
        self, recommender, small_db, monkeypatch
    ):
        import repro.campaign as campaign

        monkeypatch.setattr(campaign, "EXACT_SUBSET_LIMIT", 1)
        with pytest.raises(ValidationError, match="subset"):
            plan_campaign(recommender, small_db, method="exact")
        plan = plan_campaign(recommender, small_db, method="auto")
        assert plan.method == "greedy"


class TestReporting:
    def test_to_dict_round_trips_through_json(self, recommender, small_db):
        import json

        plan = plan_campaign(recommender, small_db, max_offers=2)
        doc = json.loads(json.dumps(plan.to_dict()))
        assert doc["method"] == plan.method
        assert doc["expected_profit"] == pytest.approx(plan.expected_profit)
        assert len(doc["offers"]) == len(plan.offers)
        assert doc["max_offers"] == 2

    def test_describe_mentions_offers(self, recommender, small_db):
        plan = plan_campaign(recommender, small_db)
        text = plan.describe()
        assert "campaign plan" in text
        for offer in plan.offers:
            assert offer.item_id in text

    def test_dataclasses_exported_at_top_level(self):
        import repro

        assert repro.plan_campaign is plan_campaign
        assert repro.CampaignPlan is CampaignPlan
        assert repro.PlannedOffer is PlannedOffer

    def test_obs_instrumentation(self, recommender, small_db):
        from repro import obs

        with obs.tracing("plan") as trace:
            plan_campaign(recommender, small_db)
        assert trace.counters["campaign.baskets"] == len(small_db)
        assert trace.counters["campaign.distinct_baskets"] >= 1
        assert trace.counters["campaign.candidates"] >= 1
        assert trace.counters["campaign.exact_subsets"] >= 1
        names = [span["name"] for span in trace.to_dict()["spans"]]
        assert "campaign" in names
