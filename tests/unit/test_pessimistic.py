"""Unit tests for the Clopper–Pearson pessimistic estimate (Section 4.2)."""

from __future__ import annotations

import pytest
from scipy import stats

from repro.core.pessimistic import (
    DEFAULT_CF,
    pessimistic_hits,
    pessimistic_miss_rate,
)
from repro.errors import ValidationError


class TestMissRate:
    def test_zero_errors_matches_c45_closed_form(self):
        # C4.5: U_CF(N, 0) = 1 − CF^(1/N)
        for n in (1, 5, 100):
            assert pessimistic_miss_rate(n, 0) == pytest.approx(
                1 - DEFAULT_CF ** (1 / n)
            )

    def test_all_errors_is_certain_miss(self):
        assert pessimistic_miss_rate(10, 10) == 1.0

    def test_upper_limit_exceeds_observed_rate(self):
        for n, e in [(10, 2), (50, 5), (200, 20)]:
            assert pessimistic_miss_rate(n, e) > e / n

    def test_clopper_pearson_inversion(self):
        # The upper limit p solves P[Binomial(n, p) <= e] = CF.
        n, e = 30, 4
        upper = pessimistic_miss_rate(n, e)
        assert stats.binom.cdf(e, n, upper) == pytest.approx(DEFAULT_CF, rel=1e-6)

    def test_monotone_in_errors(self):
        rates = [pessimistic_miss_rate(20, e) for e in range(0, 21)]
        assert rates == sorted(rates)

    def test_monotone_in_n_for_fixed_rate(self):
        # More evidence at the same observed rate → tighter (smaller) limit.
        assert pessimistic_miss_rate(100, 10) < pessimistic_miss_rate(10, 1)

    def test_smaller_cf_is_more_pessimistic(self):
        assert pessimistic_miss_rate(20, 2, cf=0.1) > pessimistic_miss_rate(
            20, 2, cf=0.5
        )

    def test_validation(self):
        with pytest.raises(ValidationError, match="N > 0"):
            pessimistic_miss_rate(0, 0)
        with pytest.raises(ValidationError, match="0 <= E <= N"):
            pessimistic_miss_rate(5, 6)
        with pytest.raises(ValidationError, match="0 <= E <= N"):
            pessimistic_miss_rate(5, -1)
        with pytest.raises(ValidationError, match="confidence"):
            pessimistic_miss_rate(5, 1, cf=1.0)

    def test_fractional_errors_accepted(self):
        assert 0 < pessimistic_miss_rate(10, 1.5) < 1


class TestPessimisticHits:
    def test_zero_coverage_gives_zero(self):
        assert pessimistic_hits(0, 0) == 0.0

    def test_bounded_by_observed_hits(self):
        for n, hits in [(10, 10), (50, 40), (200, 150)]:
            assert pessimistic_hits(n, hits) < hits

    def test_full_misses_give_zero(self):
        assert pessimistic_hits(10, 0) == pytest.approx(0.0)

    def test_scales_with_confidence_in_data(self):
        # 90/100 hits should retain a larger *fraction* than 9/10 hits.
        assert pessimistic_hits(100, 90) / 100 > pessimistic_hits(10, 9) / 10

    def test_validation(self):
        with pytest.raises(ValidationError, match="hits"):
            pessimistic_hits(10, 11)
