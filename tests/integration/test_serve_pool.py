"""End-to-end worker-pool tests: identity, crash recovery, coordinated swap.

Starts the real pre-fork pool in-process (``BackgroundPool``: a
supervisor thread forking actual worker processes) and exercises the
guarantees the single daemon cannot give alone:

* every worker serves bit-identical recommendations (kernel balancing
  never changes answers);
* ``kill -9`` of a worker under traffic is survived — the supervisor
  re-forks it, no request that reaches a live worker ever fails, and the
  restart is visible in the aggregated ``/stats``;
* a hot-swap triggered through any worker fans out to the whole pool,
  every in-flight response matches exactly one generation's model, and a
  worker restarted *after* the swap catches up to the pool generation
  before serving;
* artifact mtime polling (supervisor-side) swaps every worker.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import threading
import time

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.datasets import build_dataset, dataset_i_config
from repro.data.model_io import load_model, save_model
from repro.serve import BackgroundPool, PoolConfig, ServeConfig


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    """Two structurally different artifacts plus their expected outputs."""
    root = tmp_path_factory.mktemp("pool_models")
    dataset = build_dataset(
        dataset_i_config(n_transactions=400, n_items=60, seed=3)
    )

    def fit(min_support: float):
        return ProfitMiner(
            dataset.hierarchy,
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=min_support, max_body_size=2)
            ),
        ).fit(dataset.db)

    path_a = root / "model_a.json"
    path_b = root / "model_b.json"
    save_model(fit(0.02).require_fitted_recommender(), path_a)
    save_model(fit(0.10).require_fitted_recommender(), path_b)

    baskets = [t.nontarget_sales for t in dataset.db.transactions[:30]]
    payloads = [
        [
            {"item": s.item_id, "promo": s.promo_code, "quantity": s.quantity}
            for s in basket
        ]
        for basket in baskets
    ]
    expected_a = [
        (r.item_id, r.promo_code)
        for r in load_model(path_a).recommend_many(baskets)
    ]
    expected_b = [
        (r.item_id, r.promo_code)
        for r in load_model(path_b).recommend_many(baskets)
    ]
    assert expected_a != expected_b
    return {
        "path_a": str(path_a),
        "path_b": str(path_b),
        "payloads": payloads,
        "expected_a": expected_a,
        "expected_b": expected_b,
    }


def _request(port: int, method: str, path: str, payload=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _worker_generations(port: int, model: str) -> list[int]:
    """Each live worker's generation for ``model``, from pool /stats."""
    status, stats = _request(port, "GET", "/stats")
    assert status == 200
    return [
        detail["generations"][model]
        for detail in stats["pool"]["workers_detail"]
        if "generations" in detail
    ]


class _TrafficThread(threading.Thread):
    """Keep-alive /recommend traffic that survives worker deaths.

    Connection-level drops (the killed worker's connections reset) are
    counted and followed by a reconnect; HTTP-level responses — requests
    that reached a live worker — are recorded for the caller to assert
    on.  Records ``(status, basket index, body, time)`` tuples.
    """

    def __init__(self, port: int, payloads) -> None:
        super().__init__()
        self.port = port
        self.payloads = payloads
        self.stop_event = threading.Event()
        self.results: list[tuple[int, int, dict, float]] = []
        self.reconnects = 0

    def run(self) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        index = 0
        try:
            while not self.stop_event.is_set():
                idx = index % len(self.payloads)
                index += 1
                try:
                    conn.request(
                        "POST",
                        "/recommend",
                        body=json.dumps({"basket": self.payloads[idx]}),
                    )
                    response = conn.getresponse()
                    body = json.loads(response.read())
                except (
                    ConnectionError,
                    http.client.HTTPException,
                    OSError,
                ):
                    conn.close()
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", self.port, timeout=30
                    )
                    self.reconnects += 1
                    continue
                self.results.append(
                    (response.status, idx, body, time.time())
                )
        finally:
            conn.close()


class TestPoolServing:
    def test_identity_and_aggregated_stats(self, world):
        config = ServeConfig(port=0, max_linger_ms=0.0)
        with BackgroundPool(
            world["path_a"], config, PoolConfig(workers=2)
        ) as pool:
            port = pool.port
            assert len(pool.pids) == 2
            # Fresh connection per request: the kernel spreads them over
            # both workers, and every answer must be bit-equal anyway.
            n_singles = 12
            for i in range(n_singles):
                idx = i % len(world["payloads"])
                status, body = _request(
                    port, "POST", "/recommend",
                    {"basket": world["payloads"][idx]},
                )
                assert status == 200
                assert (body["item"], body["promo"]) == world["expected_a"][idx]
                assert body["generation"] == 1
            status, body = _request(
                port, "POST", "/recommend_batch",
                {"baskets": world["payloads"]},
            )
            assert status == 200
            got = [(r["item"], r["promo"]) for r in body["recommendations"]]
            assert got == world["expected_a"]

            # /query serves from every worker's inherited store.
            status, body = _request(
                port, "POST", "/query", {"shape": "concept", "top": 5}
            )
            assert status == 200 and body["generation"] == 1

            # /stats aggregates the pool: counters sum across workers.
            status, stats = _request(port, "GET", "/stats")
            assert status == 200
            assert stats["counters"]["recommend_requests"] == n_singles
            assert stats["counters"]["batch_requests"] == 1
            assert (
                stats["counters"]["baskets_served"]
                == n_singles + len(world["payloads"])
            )
            pool_block = stats["pool"]
            assert pool_block["workers"] == 2
            assert pool_block["alive"] == 2
            assert pool_block["restarts"] == 0
            assert len(pool_block["workers_detail"]) == 2
            pids = {d["pid"] for d in pool_block["workers_detail"]}
            assert pids == set(pool.pids)
            # Each worker's own document stays reachable.
            status, local = _request(port, "GET", "/stats/local")
            assert status == 200
            assert local["worker"] in {0, 1}
            assert local["counters"]["requests"] <= stats["counters"]["requests"]

    def test_inherit_listener_mode(self, world):
        config = ServeConfig(port=0)
        with BackgroundPool(
            world["path_a"],
            config,
            PoolConfig(workers=2, listener="inherit"),
        ) as pool:
            assert pool.pool.mode == "inherit"
            assert len(pool.pids) == 2
            for idx in (0, 1, 2):
                status, body = _request(
                    pool.port, "POST", "/recommend",
                    {"basket": world["payloads"][idx]},
                )
                assert status == 200
                assert (body["item"], body["promo"]) == world["expected_a"][idx]


class TestWorkerCrash:
    def test_kill9_under_traffic_restarts_without_failures(self, world):
        config = ServeConfig(port=0, max_linger_ms=0.0)
        with BackgroundPool(
            world["path_a"],
            config,
            PoolConfig(workers=2, restart_backoff_s=0.05),
        ) as pool:
            port = pool.port
            threads = [
                _TrafficThread(port, world["payloads"]) for _ in range(2)
            ]
            health: list[tuple[int, float]] = []
            health_stop = threading.Event()

            def health_worker() -> None:
                while not health_stop.is_set():
                    try:
                        status, body = _request(port, "GET", "/healthz")
                    except (ConnectionError, http.client.HTTPException, OSError):
                        continue  # hit the dying worker's socket; retry
                    assert body["status"] == "ok"
                    health.append((status, time.time()))
                    time.sleep(0.01)

            health_thread = threading.Thread(target=health_worker)
            for thread in threads:
                thread.start()
            health_thread.start()
            try:
                time.sleep(0.3)
                victim = pool.pids[0]
                killed_at = time.time()
                os.kill(victim, signal.SIGKILL)
                deadline = time.time() + 20
                while time.time() < deadline:
                    pids = pool.pids
                    if len(pids) == 2 and victim not in pids:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("supervisor never re-forked the killed worker")
                restarted_at = time.time()
                time.sleep(0.3)  # traffic against the healed pool
            finally:
                for thread in threads:
                    thread.stop_event.set()
                health_stop.set()
                for thread in threads:
                    thread.join(timeout=30)
                health_thread.join(timeout=30)

            results = [r for thread in threads for r in thread.results]
            assert results, "traffic threads never completed a request"
            # Every request that reached a worker succeeded — before,
            # during and after the kill; correctness never degraded.
            for status, idx, body, _when in results:
                assert status == 200
                assert (body["item"], body["promo"]) == world["expected_a"][idx]
            # The kill was actually disruptive (connections dropped) and
            # actually survived (traffic kept flowing afterwards).
            after_restart = [
                r for r in results if r[3] >= restarted_at
            ]
            assert after_restart, "no successful traffic after the restart"
            assert health, "health thread never completed a request"
            assert all(status == 200 for status, _ in health)
            assert any(when >= killed_at for _, when in health)

            status, stats = _request(port, "GET", "/stats")
            assert status == 200
            assert stats["pool"]["restarts"] == 1
            assert stats["pool"]["alive"] == 2


class TestHotSwapAcrossPool:
    def test_coordinated_swap_under_load_and_catchup(self, world):
        config = ServeConfig(port=0, max_linger_ms=0.0)
        expected = {1: world["expected_a"]}
        with BackgroundPool(
            world["path_a"],
            config,
            PoolConfig(workers=4, restart_backoff_s=0.05),
        ) as pool:
            port = pool.port
            model = pool.pool.model_names[0]
            threads = [
                _TrafficThread(port, world["payloads"]) for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            try:
                time.sleep(0.3)  # traffic against generation 1
                status, body = _request(
                    port, "POST", "/admin/reload", {"path": world["path_b"]}
                )
                assert status == 200 and body["swapped"] is True
                assert body["generation"] == 2
                # The swap fanned out: all four workers confirmed.
                assert len(body["workers"]) == 4
                assert all(
                    info["generation"] == 2
                    for info in body["workers"].values()
                )
                expected[2] = world["expected_b"]
                time.sleep(0.3)  # traffic against generation 2
            finally:
                for thread in threads:
                    thread.stop_event.set()
                for thread in threads:
                    thread.join(timeout=30)

            results = [r for thread in threads for r in thread.results]
            generations_seen = set()
            for status, idx, body, _when in results:
                assert status == 200
                generation = body["generation"]
                generations_seen.add(generation)
                # Bit-exact match against exactly one generation's model,
                # whichever worker answered.
                assert (body["item"], body["promo"]) == expected[generation][idx]
            assert generations_seen == {1, 2}
            assert _worker_generations(port, model) == [2, 2, 2, 2]

            # A worker killed *after* the swap restarts into the pool's
            # current generation (catch-up sync), never generation 1.
            victim = pool.pids[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 20
            while time.time() < deadline:
                pids = pool.pids
                if len(pids) == 4 and victim not in pids:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("supervisor never re-forked the killed worker")
            assert _worker_generations(port, model) == [2, 2, 2, 2]
            status, body = _request(
                port, "POST", "/recommend", {"basket": world["payloads"][0]}
            )
            assert status == 200 and body["generation"] == 2
            assert (body["item"], body["promo"]) == world["expected_b"][0]


class TestPoolMtimePolling:
    def test_artifact_overwrite_fans_out_to_all_workers(self, world, tmp_path):
        serving_path = tmp_path / "serving.json"
        serving_path.write_bytes(open(world["path_a"], "rb").read())
        config = ServeConfig(port=0, poll_interval_s=0.05)
        with BackgroundPool(
            str(serving_path), config, PoolConfig(workers=2)
        ) as pool:
            port = pool.port
            model = pool.pool.model_names[0]
            assert _worker_generations(port, model) == [1, 1]
            # Atomically publish model B over the watched path, exactly
            # as a production re-fit would (save_model is temp+replace).
            save_model(load_model(world["path_b"]), serving_path)
            deadline = time.time() + 20
            while time.time() < deadline:
                if _worker_generations(port, model) == [2, 2]:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("mtime poll never swapped every worker")
            status, body = _request(
                port, "POST", "/recommend", {"basket": world["payloads"][0]}
            )
            assert status == 200 and body["generation"] == 2
            assert (body["item"], body["promo"]) == world["expected_b"][0]


class TestPoolAdminErrors:
    def test_failed_pool_reload_keeps_all_workers_serving(self, world):
        config = ServeConfig(port=0)
        with BackgroundPool(
            world["path_a"], config, PoolConfig(workers=2)
        ) as pool:
            port = pool.port
            model = pool.pool.model_names[0]
            status, body = _request(
                port, "POST", "/admin/reload", {"path": "/nonexistent.json"}
            )
            assert status == 500 and body["swapped"] is False
            assert _worker_generations(port, model) == [1, 1]
            status, body = _request(
                port, "POST", "/recommend", {"basket": world["payloads"][0]}
            )
            assert status == 200 and body["generation"] == 1

    def test_unknown_model_rejected_locally(self, world):
        config = ServeConfig(port=0)
        with BackgroundPool(
            world["path_a"], config, PoolConfig(workers=2)
        ) as pool:
            status, body = _request(
                pool.port, "POST", "/admin/reload", {"model": "nope"}
            )
            assert status == 404 and "nope" in body["error"]
