"""Integration tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_figure_panel_choices(self):
        args = build_parser().parse_args(["figure", "4d"])
        assert args.panel == "4d"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "5a"])


class TestGenerateAndFit:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        code = main(
            [
                "generate",
                "--dataset",
                "I",
                "--transactions",
                "200",
                "--items",
                "40",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "wrote 200 transactions" in capsys.readouterr().out

    def test_fit_reports_and_explains(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        main(
            [
                "generate",
                "--transactions",
                "300",
                "--items",
                "40",
                "--out",
                str(out),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "fit",
                "--data",
                str(out),
                "--min-support",
                "0.02",
                "--explain",
                "2",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "PROF+MOA" in text
        assert "selected rule" in text

    def test_fit_no_moa_label(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        main(
            ["generate", "--transactions", "300", "--items", "40", "--out", str(out)]
        )
        capsys.readouterr()
        assert main(["fit", "--data", str(out), "--no-moa"]) == 0
        assert "PROF-MOA" in capsys.readouterr().out

    def test_missing_file_is_reported_not_raised(self, capsys):
        code = main(["fit", "--data", "/nonexistent/x.jsonl"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExperimentCommands:
    def test_figure_3e_runs_at_tiny_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["figure", "3e"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3e" in out
        assert "profit=" in out

    def test_figure_4e_scale_flag(self, capsys):
        assert main(["figure", "4e", "--scale", "tiny"]) == 0
        assert "dataset II" in capsys.readouterr().out


class TestExportCommand:
    def test_export_writes_csv(self, tmp_path, capsys):
        data = tmp_path / "data.jsonl"
        main(
            ["generate", "--transactions", "300", "--items", "40", "--out", str(data)]
        )
        out = tmp_path / "rules.csv"
        code = main(
            ["export", "--data", str(data), "--min-support", "0.02", "--out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("rank,")
        assert "wrote" in capsys.readouterr().out

    def test_export_recommendations_csv(self, tmp_path, capsys):
        data = tmp_path / "data.jsonl"
        main(
            ["generate", "--transactions", "300", "--items", "40", "--out", str(data)]
        )
        rules = tmp_path / "rules.csv"
        recs = tmp_path / "recs.csv"
        code = main(
            [
                "export",
                "--data",
                str(data),
                "--min-support",
                "0.02",
                "--out",
                str(rules),
                "--recommendations-out",
                str(recs),
            ]
        )
        assert code == 0
        lines = recs.read_text().splitlines()
        assert lines[0].startswith("tid,")
        assert len(lines) == 1 + 300  # header + one row per transaction
        assert "recommendations" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_prints_table_and_significance(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "I",
                "--scale",
                "tiny",
                "--systems",
                "PROF+MOA",
                "MPI",
                "DT",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PROF+MOA" in out and "MPI" in out
        assert "p=" in out  # the significance line

    def test_compare_unknown_system_fails_cleanly(self, capsys):
        code = main(
            ["compare", "--scale", "tiny", "--systems", "PROF+MOA", "Bogus"]
        )
        assert code == 1
        assert "unknown systems" in capsys.readouterr().err


class TestModelPersistenceViaCli:
    @pytest.fixture
    def saved_model(self, tmp_path, capsys):
        """A dataset file and a model fitted on it via the CLI."""
        data = tmp_path / "data.jsonl"
        main(
            ["generate", "--transactions", "300", "--items", "40", "--out", str(data)]
        )
        model_path = tmp_path / "model.json"
        assert (
            main(
                [
                    "fit",
                    "--data",
                    str(data),
                    "--min-support",
                    "0.02",
                    "--save-model",
                    str(model_path),
                ]
            )
            == 0
        )
        assert "model saved" in capsys.readouterr().out
        return data, model_path

    def test_fit_save_model_round_trip(self, saved_model):
        from repro.data.model_io import load_model

        _, model_path = saved_model
        restored = load_model(model_path)
        assert restored.model_size >= 1

    def test_export_from_saved_model(self, saved_model, tmp_path, capsys):
        _, model_path = saved_model
        capsys.readouterr()
        out = tmp_path / "rules.csv"
        code = main(["export", "--model", str(model_path), "--out", str(out)])
        assert code == 0
        text = out.read_text()
        assert text.startswith("rank,")
        assert len(text.splitlines()) > 1
        assert "saved model" in capsys.readouterr().out

    def test_export_saved_model_matches_refit_export(
        self, saved_model, tmp_path, capsys
    ):
        data, model_path = saved_model
        fitted_csv = tmp_path / "fitted.csv"
        loaded_csv = tmp_path / "loaded.csv"
        assert (
            main(
                [
                    "export",
                    "--data",
                    str(data),
                    "--min-support",
                    "0.02",
                    "--out",
                    str(fitted_csv),
                ]
            )
            == 0
        )
        assert (
            main(["export", "--model", str(model_path), "--out", str(loaded_csv)])
            == 0
        )
        assert loaded_csv.read_text() == fitted_csv.read_text()

    def test_export_saved_model_serves_recommendations(
        self, saved_model, tmp_path, capsys
    ):
        data, model_path = saved_model
        capsys.readouterr()
        rules = tmp_path / "rules.csv"
        recs = tmp_path / "recs.csv"
        code = main(
            [
                "export",
                "--model",
                str(model_path),
                "--data",
                str(data),
                "--out",
                str(rules),
                "--recommendations-out",
                str(recs),
            ]
        )
        assert code == 0
        lines = recs.read_text().splitlines()
        assert lines[0].startswith("tid,")
        assert len(lines) == 1 + 300

    def test_export_recommendations_from_model_needs_data(
        self, saved_model, tmp_path, capsys
    ):
        _, model_path = saved_model
        capsys.readouterr()
        code = main(
            [
                "export",
                "--model",
                str(model_path),
                "--out",
                str(tmp_path / "rules.csv"),
                "--recommendations-out",
                str(tmp_path / "recs.csv"),
            ]
        )
        assert code == 1
        assert "--data" in capsys.readouterr().err

    def test_export_needs_data_or_model(self, tmp_path, capsys):
        code = main(["export", "--out", str(tmp_path / "rules.csv")])
        assert code == 1
        assert "--data" in capsys.readouterr().err

    def test_compare_scores_saved_model_on_shared_folds(self, tmp_path, capsys):
        # Serving a model requires its catalog to cover the evaluation
        # items, so fit the saved model on the same dataset compare uses.
        from repro.data.io import save_transactions
        from repro.eval.experiments import ExperimentScale, get_dataset

        data = tmp_path / "tiny.jsonl"
        save_transactions(get_dataset("I", ExperimentScale.tiny()).db, data)
        model_path = tmp_path / "model.json"
        assert (
            main(
                [
                    "fit",
                    "--data",
                    str(data),
                    "--min-support",
                    "0.02",
                    "--save-model",
                    str(model_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "compare",
                "--dataset",
                "I",
                "--scale",
                "tiny",
                "--systems",
                "PROF+MOA",
                "MPI",
                "--model",
                str(model_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "saved:PROF+MOA" in out
        # Significance lines: one for MPI, one for the saved row.
        assert out.count("p=") == 2


@pytest.mark.slow
class TestSweepCommand:
    def test_sweep_prints_three_metrics(self, capsys):
        code = main(["sweep", "--dataset", "I", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gain" in out and "hit_rate" in out and "model_size" in out
        assert "PROF+MOA" in out


@pytest.mark.slow
class TestReportCommand:
    def test_report_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            ["report", "--dataset", "I", "--scale", "tiny", "--out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("# Figure 3 reproduction")
        assert "Figure 3(d)" in text
        assert "PROF+MOA" in text


class TestServeCommand:
    def test_parser_accepts_serve_knobs(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--model", "model.json",
                "--port", "0",
                "--max-batch", "32",
                "--max-linger-ms", "0.5",
                "--trace-sample-rate", "0.25",
                "--poll-interval", "2.0",
            ]
        )
        assert args.command == "serve"
        assert args.model == ["model.json"]
        assert args.max_batch == 32
        assert args.trace_sample_rate == 0.25

    def test_parser_accepts_repeated_named_models(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--model", "prod=a.json",
                "--model", "canary=b.json",
                "--port", "0",
            ]
        )
        assert args.model == ["prod=a.json", "canary=b.json"]

    def test_model_spec_parsing(self):
        from repro.cli import _parse_model_specs

        assert _parse_model_specs(["a.json"]) == [(None, "a.json")]
        assert _parse_model_specs(["prod=a.json", "b.json"]) == [
            ("prod", "a.json"),
            (None, "b.json"),
        ]
        # Split on the first '=' only; no name means no '=' prefix.
        assert _parse_model_specs(["x=a=b.json"]) == [("x", "a=b.json")]
        assert _parse_model_specs(["=weird.json"]) == [(None, "=weird.json")]

    def test_serve_requires_model(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_bad_sample_rate_reported_not_raised(self, tmp_path, capsys):
        # Any ProfitMiningError (here: rate out of range) must exit 1
        # with a message, not a traceback.
        code = main(
            [
                "serve",
                "--model", str(tmp_path / "missing.json"),
                "--trace-sample-rate", "7",
            ]
        )
        assert code == 1
        assert "trace sample rate" in capsys.readouterr().err


class TestQueryCommand:
    @pytest.fixture(scope="class")
    def saved_model(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("cli_query")
        data = tmp_path / "data.jsonl"
        main(
            ["generate", "--transactions", "300", "--items", "40", "--out", str(data)]
        )
        model_path = tmp_path / "model.json"
        assert (
            main(
                [
                    "fit",
                    "--data", str(data),
                    "--min-support", "0.02",
                    "--save-model", str(model_path),
                ]
            )
            == 0
        )
        return model_path

    def test_query_table_lists_all_rules(self, saved_model, capsys):
        capsys.readouterr()
        assert main(["query", "--model", str(saved_model)]) == 0
        out = capsys.readouterr().out
        assert "matching rules" in out
        assert "(default)" in out  # the default rule always matches

    def test_query_json_matches_library_answer(self, saved_model, capsys):
        from repro.data.model_io import load_model

        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    "--model", str(saved_model),
                    "--shape", "concept",
                    "--top", "5",
                    "--json",
                ]
            )
            == 0
        )
        got = json.loads(capsys.readouterr().out)
        expected = load_model(saved_model).query_rules(shape="concept", top=5)
        assert got["n"] == len(expected)
        assert got["hits"] == [hit.to_dict() for hit in expected]

    def test_query_filters_compose(self, saved_model, capsys):
        from repro.data.model_io import load_model

        recommender = load_model(saved_model)
        promo = recommender.ranked_rules[0].rule.head.promo
        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    "--model", str(saved_model),
                    "--head-promo", promo,
                    "--min-conf", "0.0",
                    "--json",
                ]
            )
            == 0
        )
        got = json.loads(capsys.readouterr().out)
        assert all(hit["promo"] == promo for hit in got["hits"])
        assert got["n"] == len(recommender.query_rules(head_promo=promo))

    def test_query_missing_model_reported_not_raised(self, capsys):
        code = main(["query", "--model", "/nonexistent/model.json"])
        assert code == 1
        assert capsys.readouterr().err


class TestPlanCommand:
    @pytest.fixture(scope="class")
    def saved_world(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("cli_plan")
        data = tmp_path / "data.jsonl"
        main(
            ["generate", "--transactions", "300", "--items", "40", "--out", str(data)]
        )
        model_path = tmp_path / "model.json"
        assert (
            main(
                [
                    "fit",
                    "--data", str(data),
                    "--min-support", "0.02",
                    "--save-model", str(model_path),
                ]
            )
            == 0
        )
        return {"model": model_path, "data": data}

    def test_plan_prints_table_and_certificate(self, saved_world, capsys):
        capsys.readouterr()
        assert (
            main(
                [
                    "plan",
                    "--model", str(saved_world["model"]),
                    "--data", str(saved_world["data"]),
                    "--max-offers", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "campaign plan" in out
        assert "total E[profit]" in out
        assert "certified <=" in out

    def test_plan_json_matches_library_answer(self, saved_world, capsys):
        from repro.campaign import plan_campaign
        from repro.data.io import load_transactions
        from repro.data.model_io import load_model

        expected = plan_campaign(
            load_model(saved_world["model"]),
            load_transactions(str(saved_world["data"])),
            max_offers=2,
            budget=10.0,
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "plan",
                    "--model", str(saved_world["model"]),
                    "--data", str(saved_world["data"]),
                    "--max-offers", "2",
                    "--budget", "10.0",
                    "--json",
                ]
            )
            == 0
        )
        got = json.loads(capsys.readouterr().out)
        assert got["method"] == expected.method
        assert got["expected_profit"] == pytest.approx(expected.expected_profit)
        assert got["offers"] == [offer.to_dict() for offer in expected.offers]

    def test_plan_inventory_specs(self, saved_world, capsys):
        capsys.readouterr()
        assert (
            main(
                [
                    "plan",
                    "--model", str(saved_world["model"]),
                    "--data", str(saved_world["data"]),
                    "--inventory", "T1=0",
                    "--json",
                ]
            )
            == 0
        )
        got = json.loads(capsys.readouterr().out)
        assert all(offer["item"] != "T1" for offer in got["offers"])
        assert got["inventory"] == {"T1": 0.0}

    def test_plan_rejects_bad_inventory_spec(self, saved_world, capsys):
        capsys.readouterr()
        assert (
            main(
                [
                    "plan",
                    "--model", str(saved_world["model"]),
                    "--data", str(saved_world["data"]),
                    "--inventory", "oops",
                ]
            )
            == 1
        )
        assert "ITEM=UNITS" in capsys.readouterr().err
