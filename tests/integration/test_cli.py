"""Integration tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_figure_panel_choices(self):
        args = build_parser().parse_args(["figure", "4d"])
        assert args.panel == "4d"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "5a"])


class TestGenerateAndFit:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        code = main(
            [
                "generate",
                "--dataset",
                "I",
                "--transactions",
                "200",
                "--items",
                "40",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "wrote 200 transactions" in capsys.readouterr().out

    def test_fit_reports_and_explains(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        main(
            [
                "generate",
                "--transactions",
                "300",
                "--items",
                "40",
                "--out",
                str(out),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "fit",
                "--data",
                str(out),
                "--min-support",
                "0.02",
                "--explain",
                "2",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "PROF+MOA" in text
        assert "selected rule" in text

    def test_fit_no_moa_label(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        main(
            ["generate", "--transactions", "300", "--items", "40", "--out", str(out)]
        )
        capsys.readouterr()
        assert main(["fit", "--data", str(out), "--no-moa"]) == 0
        assert "PROF-MOA" in capsys.readouterr().out

    def test_missing_file_is_reported_not_raised(self, capsys):
        code = main(["fit", "--data", "/nonexistent/x.jsonl"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExperimentCommands:
    def test_figure_3e_runs_at_tiny_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["figure", "3e"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3e" in out
        assert "profit=" in out

    def test_figure_4e_scale_flag(self, capsys):
        assert main(["figure", "4e", "--scale", "tiny"]) == 0
        assert "dataset II" in capsys.readouterr().out


class TestExportCommand:
    def test_export_writes_csv(self, tmp_path, capsys):
        data = tmp_path / "data.jsonl"
        main(
            ["generate", "--transactions", "300", "--items", "40", "--out", str(data)]
        )
        out = tmp_path / "rules.csv"
        code = main(
            ["export", "--data", str(data), "--min-support", "0.02", "--out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("rank,")
        assert "wrote" in capsys.readouterr().out

    def test_export_recommendations_csv(self, tmp_path, capsys):
        data = tmp_path / "data.jsonl"
        main(
            ["generate", "--transactions", "300", "--items", "40", "--out", str(data)]
        )
        rules = tmp_path / "rules.csv"
        recs = tmp_path / "recs.csv"
        code = main(
            [
                "export",
                "--data",
                str(data),
                "--min-support",
                "0.02",
                "--out",
                str(rules),
                "--recommendations-out",
                str(recs),
            ]
        )
        assert code == 0
        lines = recs.read_text().splitlines()
        assert lines[0].startswith("tid,")
        assert len(lines) == 1 + 300  # header + one row per transaction
        assert "recommendations" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_prints_table_and_significance(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "I",
                "--scale",
                "tiny",
                "--systems",
                "PROF+MOA",
                "MPI",
                "DT",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PROF+MOA" in out and "MPI" in out
        assert "p=" in out  # the significance line

    def test_compare_unknown_system_fails_cleanly(self, capsys):
        code = main(
            ["compare", "--scale", "tiny", "--systems", "PROF+MOA", "Bogus"]
        )
        assert code == 1
        assert "unknown systems" in capsys.readouterr().err


class TestModelPersistenceViaCli:
    def test_fit_save_model_round_trip(self, tmp_path, capsys):
        from repro.data.model_io import load_model

        data = tmp_path / "data.jsonl"
        main(
            ["generate", "--transactions", "300", "--items", "40", "--out", str(data)]
        )
        model_path = tmp_path / "model.json"
        code = main(
            [
                "fit",
                "--data",
                str(data),
                "--min-support",
                "0.02",
                "--save-model",
                str(model_path),
            ]
        )
        assert code == 0
        assert "model saved" in capsys.readouterr().out
        restored = load_model(model_path)
        assert restored.model_size >= 1


@pytest.mark.slow
class TestSweepCommand:
    def test_sweep_prints_three_metrics(self, capsys):
        code = main(["sweep", "--dataset", "I", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gain" in out and "hit_rate" in out and "model_size" in out
        assert "PROF+MOA" in out


@pytest.mark.slow
class TestReportCommand:
    def test_report_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            ["report", "--dataset", "I", "--scale", "tiny", "--out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("# Figure 3 reproduction")
        assert "Figure 3(d)" in text
        assert "PROF+MOA" in text
