"""The paper's introductory Egg example (Section 1.1), end to end.

100 customers bought 1 pack of Egg at $1/pack (cost $0.5/pack) and 100
customers bought one 4-pack package at $3.2 (cost $2 per package).  The
recorded profit is 100·0.5 + 100·1.2 = $170.  A model that "repeats the
past" reproduces $170 on the next 200 identical customers; profit mining
should instead recommend the package price to everyone, generating
100·1.2 + 100·1.2 = $240 — under buying MOA, where the single-pack buyers
keep spending their $1 at the better unit price.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BuyingMOA,
    ConceptHierarchy,
    GSale,
    Item,
    ItemCatalog,
    MinerConfig,
    MOAHierarchy,
    ProfitMiner,
    ProfitMinerConfig,
    PromotionCode,
    Sale,
    Transaction,
    TransactionDB,
)
from repro.eval.metrics import EvalConfig, evaluate


@pytest.fixture(scope="module")
def egg_world():
    catalog = ItemCatalog.from_items(
        [
            Item("Basket", (PromotionCode("B", 1.0, 0.0),)),
            Item(
                "Egg",
                (
                    PromotionCode("pack", 1.0, 0.5, packing=1),
                    PromotionCode("package", 3.2, 2.0, packing=4),
                ),
                is_target=True,
            ),
        ]
    )
    hierarchy = ConceptHierarchy.for_catalog(catalog)
    transactions = []
    for tid in range(100):
        transactions.append(
            Transaction(tid, (Sale("Basket", "B"),), Sale("Egg", "pack", 1))
        )
    for tid in range(100, 200):
        transactions.append(
            Transaction(tid, (Sale("Basket", "B"),), Sale("Egg", "package", 1))
        )
    db = TransactionDB(catalog, transactions)
    return catalog, hierarchy, db


class TestFavorabilityOfThePackage:
    def test_package_is_more_favorable(self, egg_world):
        catalog, _, _ = egg_world
        from repro.core import is_more_favorable

        pack = catalog.promotion("Egg", "pack")
        package = catalog.promotion("Egg", "package")
        # $3.2/4-pack = $0.80/unit undercuts $1/pack... but favorability is
        # about price vs packing, and the package costs more in absolute
        # terms for more value — the two are incomparable under ≺.
        assert not is_more_favorable(package, pack)
        assert not is_more_favorable(pack, package)


class TestRecordedProfit:
    def test_recorded_profit_is_170(self, egg_world):
        _, _, db = egg_world
        assert db.total_recorded_profit() == pytest.approx(170.0)


class TestProfitMiningGetsSmarter:
    def test_recommender_picks_the_package_price(self, egg_world):
        _, hierarchy, db = egg_world
        miner = ProfitMiner(
            hierarchy,
            profit_model=BuyingMOA(),
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.05, max_body_size=1)
            ),
        ).fit(db)
        rec = miner.recommend([Sale("Basket", "B")])
        assert (rec.item_id, rec.promo_code) == ("Egg", "package")

    def test_projected_profit_is_240_under_buying_moa(self, egg_world):
        """Recommending the package to all 200 customers yields $240.

        The 100 package buyers repeat their purchase ($1.2 profit each).
        The 100 pack buyers keep spending $1 at the package's unit price
        (buying MOA), i.e. 1/3.2 packages — profit 1.2/3.2 = $0.375 each...
        which is how the conservative buying MOA credits them.  The paper's
        $240 assumes they buy a full package; the recommender still agrees
        the package price is the profit-maximizing recommendation, and the
        full-package reading gives exactly $240.
        """
        _, hierarchy, db = egg_world
        catalog = db.catalog
        package = catalog.promotion("Egg", "package")
        # The paper's arithmetic: all 200 customers buy one package.
        assert 200 * package.profit == pytest.approx(240.0)

    def test_buying_moa_evaluation_beats_repeating_the_past(self, egg_world):
        """Even conservatively, profit mining out-earns a pack-price model
        on the package-buyer half and matches it elsewhere."""
        _, hierarchy, db = egg_world
        miner = ProfitMiner(
            hierarchy,
            profit_model=BuyingMOA(),
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.05, max_body_size=1)
            ),
        ).fit(db)
        result = evaluate(
            miner, db, hierarchy, EvalConfig(profit_model=BuyingMOA())
        )
        # Hits: 100 package buyers (exact) — the pack buyers' recorded sale
        # is not generalized by the package head (incomparable codes).
        assert result.hit_rate == pytest.approx(0.5)
        assert result.generated_profit == pytest.approx(100 * 1.2)

    def test_moa_hierarchy_keeps_the_codes_separate(self, egg_world):
        catalog, hierarchy, _ = egg_world
        moa = MOAHierarchy(catalog, hierarchy)
        heads = moa.target_heads_of_sale(Sale("Egg", "pack"))
        assert heads == {GSale.promo_form("Egg", "pack")}
