"""End-to-end daemon test: concurrent traffic across a live hot-swap.

Starts the real asyncio server in-process (``BackgroundDaemon``), fires
concurrent clients at it — single-basket ``/recommend`` (micro-batched
server-side) and client-batched ``/recommend_batch`` — swaps to a
structurally different model mid-traffic via ``POST /admin/reload``, and
asserts that every response is valid JSON matching either the old
model's or the new model's output bit-exactly (never a mix within one
response), while ``/healthz`` answers 200 throughout.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.datasets import build_dataset, dataset_i_config
from repro.data.model_io import load_model, save_model
from repro.serve import BackgroundDaemon, ServeConfig


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    """Two structurally different artifacts plus their expected outputs."""
    root = tmp_path_factory.mktemp("serve_models")
    dataset = build_dataset(
        dataset_i_config(n_transactions=400, n_items=60, seed=3)
    )

    def fit(min_support: float):
        return ProfitMiner(
            dataset.hierarchy,
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=min_support, max_body_size=2)
            ),
        ).fit(dataset.db)

    path_a = root / "model_a.json"
    path_b = root / "model_b.json"
    save_model(fit(0.02).require_fitted_recommender(), path_a)
    save_model(fit(0.10).require_fitted_recommender(), path_b)

    baskets = [t.nontarget_sales for t in dataset.db.transactions[:40]]
    payloads = [
        [
            {"item": s.item_id, "promo": s.promo_code, "quantity": s.quantity}
            for s in basket
        ]
        for basket in baskets
    ]
    expected_a = [
        (r.item_id, r.promo_code)
        for r in load_model(path_a).recommend_many(baskets)
    ]
    expected_b = [
        (r.item_id, r.promo_code)
        for r in load_model(path_b).recommend_many(baskets)
    ]
    # The swap must be observable: the models must disagree somewhere.
    assert expected_a != expected_b
    return {
        "path_a": str(path_a),
        "path_b": str(path_b),
        "payloads": payloads,
        "expected_a": expected_a,
        "expected_b": expected_b,
    }


def _request(port: int, method: str, path: str, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHotSwapUnderTraffic:
    def test_no_failed_or_mixed_responses_during_reload(self, world):
        payloads = world["payloads"]
        expected = {1: world["expected_a"]}  # generation -> expected picks
        config = ServeConfig(port=0, max_batch_size=16, max_linger_ms=0.5)
        results: list[tuple[str, object]] = []
        results_lock = threading.Lock()
        stop = threading.Event()

        def single_worker():
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            index = 0
            try:
                while not stop.is_set():
                    idx = index % len(payloads)
                    index += 1
                    conn.request(
                        "POST",
                        "/recommend",
                        body=json.dumps({"basket": payloads[idx]}),
                    )
                    response = conn.getresponse()
                    body = json.loads(response.read())
                    with results_lock:
                        results.append(("single", (response.status, idx, body)))
            finally:
                conn.close()

        def batch_worker():
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            try:
                while not stop.is_set():
                    conn.request(
                        "POST",
                        "/recommend_batch",
                        body=json.dumps({"baskets": payloads}),
                    )
                    response = conn.getresponse()
                    body = json.loads(response.read())
                    with results_lock:
                        results.append(("batch", (response.status, body)))
            finally:
                conn.close()

        def health_worker():
            while not stop.is_set():
                status, body = _request(port, "GET", "/healthz")
                with results_lock:
                    results.append(("health", (status, body)))
                time.sleep(0.01)

        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            threads = [
                threading.Thread(target=single_worker),
                threading.Thread(target=single_worker),
                threading.Thread(target=batch_worker),
                threading.Thread(target=health_worker),
            ]
            for thread in threads:
                thread.start()
            try:
                time.sleep(0.4)  # traffic against the old model
                status, body = _request(
                    port, "POST", "/admin/reload", {"path": world["path_b"]}
                )
                assert status == 200 and body["swapped"] is True
                expected[body["generation"]] = world["expected_b"]
                time.sleep(0.4)  # traffic against the new model
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)

        generations_seen = set()
        singles = batches = healths = 0
        for kind, entry in results:
            if kind == "health":
                status, body = entry
                assert status == 200 and body["status"] == "ok"
                healths += 1
                continue
            if kind == "single":
                status, idx, body = entry
                assert status == 200
                generation = body["generation"]
                generations_seen.add(generation)
                # Bit-exact match against exactly the generation's model.
                assert (body["item"], body["promo"]) == expected[generation][idx]
                singles += 1
            else:
                status, body = entry
                assert status == 200
                generation = body["generation"]
                generations_seen.add(generation)
                got = [
                    (r["item"], r["promo"]) for r in body["recommendations"]
                ]
                # The whole batch is served by one model — never a mix.
                assert got == expected[generation]
                batches += 1
        assert singles > 0 and batches > 0 and healths > 0
        # The swap actually happened mid-traffic: both models answered.
        assert generations_seen == {1, 2}

    def test_reload_failure_keeps_old_model_serving(self, world, tmp_path):
        config = ServeConfig(port=0)
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            status, body = _request(
                port, "POST", "/admin/reload", {"path": "/nonexistent.json"}
            )
            assert status == 500 and body["swapped"] is False

            garbage = tmp_path / "garbage.json"
            garbage.write_text("{truncated", encoding="utf-8")
            status, body = _request(
                port, "POST", "/admin/reload", {"path": str(garbage)}
            )
            assert status == 500 and body["swapped"] is False

            status, body = _request(port, "GET", "/healthz")
            assert status == 200 and body["generation"] == 1
            status, body = _request(
                port, "POST", "/recommend", {"basket": world["payloads"][0]}
            )
            assert status == 200
            assert (body["item"], body["promo"]) == world["expected_a"][0]


class TestMtimePollingSwap:
    def test_artifact_overwrite_triggers_hot_swap(self, world, tmp_path):
        serving_path = tmp_path / "serving.json"
        serving_path.write_bytes(
            open(world["path_a"], "rb").read()
        )
        config = ServeConfig(port=0, poll_interval_s=0.05)
        with BackgroundDaemon(str(serving_path), config) as daemon:
            port = daemon.port
            status, body = _request(port, "GET", "/healthz")
            assert status == 200 and body["generation"] == 1
            # Atomically publish model B over the watched path, exactly
            # as a production re-fit would (save_model is temp+replace).
            save_model(load_model(world["path_b"]), serving_path)
            deadline = time.time() + 10
            while time.time() < deadline:
                status, body = _request(port, "GET", "/healthz")
                assert status == 200
                if body["generation"] >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("mtime poller never hot-swapped the new artifact")
            status, body = _request(
                port, "POST", "/recommend", {"basket": world["payloads"][0]}
            )
            assert status == 200
            assert (body["item"], body["promo"]) == world["expected_b"][0]


class TestStatsEndpoint:
    def test_stats_exposes_counters_and_sampled_trace(self, world):
        config = ServeConfig(port=0, trace_sample_period=1)
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            for payload in world["payloads"][:5]:
                status, _ = _request(
                    port, "POST", "/recommend", {"basket": payload}
                )
                assert status == 200
            status, _ = _request(
                port,
                "POST",
                "/recommend_batch",
                {"baskets": world["payloads"][:10]},
            )
            assert status == 200
            status, stats = _request(port, "GET", "/stats")
        assert status == 200
        counters = stats["counters"]
        assert counters["recommend_requests"] == 5
        assert counters["batch_requests"] == 1
        assert counters["baskets_served"] == 15
        assert counters["errors"] == 0
        # Every serve call was sampled, so the obs-layer counters and the
        # basket-memo telemetry surface in the merged trace.
        assert stats["trace"]["counters"]["serve.baskets"] == 15
        assert "serve.basket_memo" in stats["trace"]["caches"]
        assert stats["n_rules"] > 0
        assert stats["config"]["trace_sample_period"] == 1

    def test_unknown_path_and_bad_body_are_counted_errors(self, world):
        config = ServeConfig(port=0)
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            status, _ = _request(port, "GET", "/nope")
            assert status == 404
            status, _ = _request(port, "POST", "/recommend", {"nonsense": 1})
            assert status == 400
            status, _ = _request(port, "GET", "/recommend")
            assert status == 405
            status, body = _request(
                port,
                "POST",
                "/recommend",
                {"basket": [{"item": "NoSuchItem", "promo": "P1"}]},
            )
            assert status == 400 and "NoSuchItem" in body["error"]
            status, stats = _request(port, "GET", "/stats")
        assert status == 200
        assert stats["counters"]["errors"] == 4


class TestMultiModelTenancy:
    def test_routing_stats_and_per_model_reload(self, world):
        config = ServeConfig(port=0, max_linger_ms=0.0)
        models = [("prod", world["path_a"]), ("canary", world["path_b"])]
        with BackgroundDaemon(models, config) as daemon:
            port = daemon.port
            # One shared world: both artifacts describe the same dataset.
            assert len(daemon.daemon.worlds) == 1
            prod = daemon.daemon._slots["prod"].handle.recommender
            canary = daemon.daemon._slots["canary"].handle.recommender
            assert prod.compiled.symbols is canary.compiled.symbols

            # Unrouted traffic goes to the default (first) model ...
            status, body = _request(
                port, "POST", "/recommend", {"basket": world["payloads"][0]}
            )
            assert status == 200
            assert (body["item"], body["promo"]) == world["expected_a"][0]
            # ... while "model" routes each basket to its slot.
            for name, expected in [
                ("prod", world["expected_a"]),
                ("canary", world["expected_b"]),
            ]:
                for idx in range(3):
                    status, body = _request(
                        port,
                        "POST",
                        "/recommend",
                        {"basket": world["payloads"][idx], "model": name},
                    )
                    assert status == 200
                    assert (body["item"], body["promo"]) == expected[idx]
                status, body = _request(
                    port,
                    "POST",
                    "/recommend_batch",
                    {"baskets": world["payloads"], "model": name},
                )
                assert status == 200
                got = [(r["item"], r["promo"]) for r in body["recommendations"]]
                assert got == expected

            status, body = _request(
                port,
                "POST",
                "/recommend",
                {"basket": world["payloads"][0], "model": "nope"},
            )
            assert status == 404 and "nope" in body["error"]

            # /healthz and /stats expose every resident model, with the
            # top-level keys still describing the default one.
            status, body = _request(port, "GET", "/healthz")
            assert status == 200
            assert body["models"] == {"prod": 1, "canary": 1}
            status, stats = _request(port, "GET", "/stats")
            assert status == 200
            assert set(stats["models"]) == {"prod", "canary"}
            assert stats["worlds"] == 1
            assert stats["n_rules"] == stats["models"]["prod"]["n_rules"]
            for info in stats["models"].values():
                assert sum(info["shapes"].values()) == info["n_rules"]
                assert info["store_bytes"] > 0

            # A reload of one slot leaves the other's generation alone.
            status, body = _request(
                port,
                "POST",
                "/admin/reload",
                {"model": "canary", "path": world["path_a"]},
            )
            assert status == 200 and body["swapped"] is True
            status, body = _request(port, "GET", "/healthz")
            assert body["models"] == {"prod": 1, "canary": 2}
            status, body = _request(
                port,
                "POST",
                "/recommend",
                {"basket": world["payloads"][0], "model": "canary"},
            )
            assert status == 200
            assert (body["item"], body["promo"]) == world["expected_a"][0]

    def test_duplicate_names_are_rejected(self, world):
        from repro.errors import ValidationError
        from repro.serve import RecommendDaemon

        with pytest.raises(ValidationError, match="duplicate model name"):
            RecommendDaemon(
                [("m", world["path_a"]), ("m", world["path_b"])],
                ServeConfig(port=0),
            )


class TestBackpressure:
    def test_full_queue_answers_503_with_retry_after(self, world):
        """Saturating the micro-batch queue sheds load instead of queueing.

        Deterministic setup: freeze the batch worker so the queue cannot
        drain, fill it to ``max_queue_depth``, then drive one real HTTP
        request — it must get a clean 503 with a ``Retry-After`` header,
        and the drop must show up in the stats counters.
        """
        import asyncio

        from repro.serve import RecommendDaemon

        async def run() -> None:
            daemon = RecommendDaemon(
                world["path_a"], ServeConfig(port=0, max_queue_depth=2)
            )
            await daemon.start()
            try:
                slot = daemon._slots[daemon._default_name]
                slot.worker.cancel()  # freeze the consumer
                loop = asyncio.get_running_loop()
                for _ in range(2):  # fill the queue to its cap
                    await slot.queue.put(([], loop.create_future()))

                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", daemon.port
                )
                body = json.dumps({"basket": world["payloads"][0]}).encode()
                writer.write(
                    b"POST /recommend HTTP/1.1\r\n"
                    b"Connection: close\r\n"
                    + b"Content-Length: %d\r\n\r\n" % len(body)
                    + body
                )
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                head, _, payload = raw.partition(b"\r\n\r\n")
                assert head.startswith(b"HTTP/1.1 503 Service Unavailable")
                assert b"Retry-After: 1" in head
                assert "queue is full" in json.loads(payload)["error"]
                stats = daemon.stats_payload()
                assert stats["counters"]["rejected_requests"] == 1
                assert stats["counters"]["errors"] == 1
                assert stats["config"]["max_queue_depth"] == 2
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_zero_depth_disables_the_cap(self, world):
        """``max_queue_depth=0`` keeps the old unbounded behavior."""
        config = ServeConfig(port=0, max_queue_depth=0)
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            status, body = _request(
                port, "POST", "/recommend", {"basket": world["payloads"][0]}
            )
            assert status == 200
            assert (body["item"], body["promo"]) == world["expected_a"][0]


class TestQueryEndpoint:
    def test_query_matches_library_answer(self, world):
        config = ServeConfig(port=0)
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            status, body = _request(
                port, "POST", "/query", {"shape": "concept", "top": 10}
            )
            assert status == 200
            expected = load_model(world["path_a"]).query_rules(
                shape="concept", top=10
            )
            assert body["n"] == len(expected)
            assert body["hits"] == [hit.to_dict() for hit in expected]
            assert body["generation"] == 1

            status, stats = _request(port, "GET", "/stats")
            assert stats["counters"]["query_requests"] == 1

    def test_query_validates_fields_and_model(self, world):
        config = ServeConfig(port=0)
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            status, body = _request(port, "POST", "/query", {"bogus": 1})
            assert status == 400 and "bogus" in body["error"]
            status, body = _request(
                port, "POST", "/query", {"shape": "galaxy"}
            )
            assert status == 400
            status, body = _request(
                port, "POST", "/query", {"model": "nope"}
            )
            assert status == 404
            status, body = _request(port, "GET", "/query")
            assert status == 405
            # Failed queries never crash serving.
            status, _ = _request(
                port, "POST", "/recommend", {"basket": world["payloads"][0]}
            )
            assert status == 200

    def test_query_routes_per_model(self, world):
        config = ServeConfig(port=0)
        models = {"a": world["path_a"], "b": world["path_b"]}
        with BackgroundDaemon(models, config) as daemon:
            port = daemon.port
            counts = {}
            for name, path in models.items():
                status, body = _request(
                    port, "POST", "/query", {"model": name}
                )
                assert status == 200
                counts[name] = body["n"]
                assert body["n"] == len(load_model(path).query_rules())
            # The two artifacts are structurally different models.
            assert counts["a"] != counts["b"]


class TestTopKServing:
    def test_single_and_batch_k_match_library(self, world):
        from repro.core.sales import Sale

        config = ServeConfig(port=0, max_linger_ms=0.0)
        recommender = load_model(world["path_a"])
        payloads = world["payloads"][:10]
        baskets = [
            [Sale(s["item"], s["promo"], s["quantity"]) for s in payload]
            for payload in payloads
        ]
        expected = [
            [(r.item_id, r.promo_code) for r in ranked]
            for ranked in recommender.recommend_top_k_many(baskets, 3)
        ]
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            for payload, ranked in zip(payloads, expected):
                status, body = _request(
                    port, "POST", "/recommend", {"basket": payload, "k": 3}
                )
                assert status == 200
                assert body["k"] == 3
                assert [
                    (offer["item"], offer["promo"]) for offer in body["offers"]
                ] == ranked
                assert body["generation"] == 1
            status, body = _request(
                port,
                "POST",
                "/recommend_batch",
                {"baskets": payloads, "k": 3},
            )
            assert status == 200
            assert [
                [(offer["item"], offer["promo"]) for offer in ranked]
                for ranked in body["offers"]
            ] == expected

            status, stats = _request(port, "GET", "/stats")
            assert stats["counters"]["topk_requests"] == len(payloads) + 1

    def test_k_eq_1_offers_match_plain_recommendation(self, world):
        config = ServeConfig(port=0, max_linger_ms=0.0)
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            payload = world["payloads"][0]
            status, plain = _request(
                port, "POST", "/recommend", {"basket": payload}
            )
            assert status == 200 and "offers" not in plain
            status, ranked = _request(
                port, "POST", "/recommend", {"basket": payload, "k": 1}
            )
            assert status == 200
            assert ranked["offers"][0] == {
                "item": plain["item"],
                "promo": plain["promo"],
            }

    def test_k_validation(self, world):
        config = ServeConfig(port=0)
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            for bad_k in (0, -1, True, 1.5, "2"):
                status, body = _request(
                    port,
                    "POST",
                    "/recommend",
                    {"basket": world["payloads"][0], "k": bad_k},
                )
                assert status == 400 and "'k'" in body["error"]
                status, body = _request(
                    port,
                    "POST",
                    "/recommend_batch",
                    {"baskets": [world["payloads"][0]], "k": bad_k},
                )
                assert status == 400 and "'k'" in body["error"]

    def test_mixed_k_microbatch(self, world):
        """Concurrent waiters at different k coalesce without cross-talk."""
        config = ServeConfig(port=0, max_batch_size=32, max_linger_ms=5.0)
        payloads = world["payloads"][:8]
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            results = {}
            lock = threading.Lock()

            def call(idx, k):
                body = {"basket": payloads[idx]}
                if k is not None:
                    body["k"] = k
                outcome = _request(port, "POST", "/recommend", body)
                with lock:
                    results[(idx, k)] = outcome

            jobs = [
                (idx, k)
                for idx in range(len(payloads))
                for k in (None, 1, 2)
            ]
            threads = [
                threading.Thread(target=call, args=job) for job in jobs
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for (idx, k), (status, body) in results.items():
                assert status == 200
                single = world["expected_a"][idx]
                if k is None:
                    assert (body["item"], body["promo"]) == single
                else:
                    assert len(body["offers"]) <= k
                    first = body["offers"][0]
                    assert (first["item"], first["promo"]) == single


class TestPlanEndpoint:
    def test_plan_matches_library_answer(self, world):
        from repro.campaign import plan_campaign
        from repro.core.sales import Sale

        config = ServeConfig(port=0)
        payloads = world["payloads"]
        baskets = [
            [Sale(s["item"], s["promo"], s["quantity"]) for s in payload]
            for payload in payloads
        ]
        expected = plan_campaign(
            load_model(world["path_a"]), baskets, max_offers=2
        )
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            status, body = _request(
                port,
                "POST",
                "/plan",
                {"baskets": payloads, "max_offers": 2},
            )
            assert status == 200
            assert body["method"] == expected.method
            assert body["expected_profit"] == pytest.approx(
                expected.expected_profit
            )
            assert [
                (offer["item"], offer["promo"]) for offer in body["offers"]
            ] == [
                (offer.item_id, offer.promo_code) for offer in expected.offers
            ]
            assert body["generation"] == 1

            status, stats = _request(port, "GET", "/stats")
            assert stats["counters"]["plan_requests"] == 1

    def test_plan_validates_fields(self, world):
        config = ServeConfig(port=0)
        with BackgroundDaemon(world["path_a"], config) as daemon:
            port = daemon.port
            status, body = _request(port, "POST", "/plan", {"bogus": 1})
            assert status == 400
            status, body = _request(
                port,
                "POST",
                "/plan",
                {"baskets": world["payloads"], "surprise": 1},
            )
            assert status == 400 and "surprise" in body["error"]
            status, body = _request(
                port, "POST", "/plan", {"baskets": [], "max_offers": 1}
            )
            assert status == 400  # planner rejects an empty workload
            status, body = _request(
                port,
                "POST",
                "/plan",
                {"baskets": world["payloads"], "method": "magic"},
            )
            assert status == 400 and "method" in body["error"]
            status, body = _request(
                port,
                "POST",
                "/plan",
                {"baskets": world["payloads"], "inventory": [1, 2]},
            )
            assert status == 400 and "inventory" in body["error"]
            # Failed plans never crash serving.
            status, _ = _request(
                port, "POST", "/recommend", {"basket": world["payloads"][0]}
            )
            assert status == 200
