"""Integration test for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.eval.experiments import ExperimentScale
from repro.eval.report import generate_markdown_report


@pytest.mark.slow
class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def report(self) -> str:
        return generate_markdown_report("I", ExperimentScale.tiny())

    def test_has_every_panel_section(self, report):
        for panel in "abcdef":
            assert f"Figure 3({panel})" in report, panel

    def test_contains_all_six_systems(self, report):
        for system in (
            "PROF+MOA",
            "PROF-MOA",
            "CONF+MOA",
            "CONF-MOA",
            "kNN",
            "MPI",
        ):
            assert system in report

    def test_parameters_documented(self, report):
        assert "|T| = 800" in report
        assert "3-fold CV" in report

    def test_renders_as_markdown_code_blocks(self, report):
        assert report.count("```") % 2 == 0
        assert report.startswith("# Figure 3 reproduction")
