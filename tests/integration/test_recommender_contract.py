"""Contract tests every Recommender implementation must satisfy."""

from __future__ import annotations

import pytest

from repro.baselines import (
    DecisionTreeRecommender,
    KNNRecommender,
    MPIRecommender,
)
from repro.core import (
    BinaryProfit,
    MinerConfig,
    ProfitMiner,
    ProfitMinerConfig,
    Sale,
)


def miner_factory(hierarchy, **kwargs):
    def build():
        return ProfitMiner(
            hierarchy,
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.05, max_body_size=2), **kwargs
            ),
        )

    return build


RECOMMENDER_NAMES = [
    "PROF+MOA",
    "PROF-MOA",
    "CONF+MOA",
    "kNN",
    "kNN(profit)",
    "MPI",
    "DT",
    "DT(profit)",
]


@pytest.fixture
def factories(small_hierarchy):
    return {
        "PROF+MOA": miner_factory(small_hierarchy),
        "PROF-MOA": miner_factory(small_hierarchy, use_moa=False),
        "CONF+MOA": lambda: ProfitMiner(
            small_hierarchy,
            profit_model=BinaryProfit(),
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.05, max_body_size=2)
            ),
        ),
        "kNN": KNNRecommender,
        "kNN(profit)": lambda: KNNRecommender(profit_post_processing=True),
        "MPI": MPIRecommender,
        "DT": lambda: DecisionTreeRecommender(min_leaf=5),
        "DT(profit)": lambda: DecisionTreeRecommender(min_leaf=5, profit_rerank=True),
    }


@pytest.mark.parametrize("name", RECOMMENDER_NAMES)
class TestRecommenderContract:
    def test_fit_returns_self_and_recommends_valid_pairs(
        self, name, factories, small_db
    ):
        recommender = factories[name]()
        assert recommender.fit(small_db) is recommender
        catalog = small_db.catalog
        for transaction in small_db.transactions[:10]:
            pick = recommender.recommend(transaction.nontarget_sales)
            item = catalog.get(pick.item_id)
            assert item.is_target, name
            assert item.has_promotion(pick.promo_code), name

    def test_recommend_is_deterministic(self, name, factories, small_db):
        recommender = factories[name]().fit(small_db)
        basket = small_db[0].nontarget_sales
        first = recommender.recommend(basket)
        assert all(
            recommender.recommend(basket) == first for _ in range(3)
        ), name

    def test_recommend_many_matches_loop(self, name, factories, small_db):
        recommender = factories[name]().fit(small_db)
        baskets = [t.nontarget_sales for t in small_db.transactions[:5]]
        assert recommender.recommend_many(baskets) == [
            recommender.recommend(b) for b in baskets
        ]

    def test_handles_unseen_basket(self, name, factories, small_db):
        recommender = factories[name]().fit(small_db)
        pick = recommender.recommend([Sale("Bread", "P2"), Sale("Perfume", "P1")])
        assert small_db.catalog.get(pick.item_id).is_target

    def test_model_size_is_none_or_positive(self, name, factories, small_db):
        recommender = factories[name]().fit(small_db)
        size = recommender.model_size
        assert size is None or size >= 1
