"""Smoke tests: every example script runs and prints its headline output."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 420) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Held-out evaluation" in out
        assert "recommendation:" in out

    def test_egg_promotion(self):
        out = run_example("egg_promotion.py")
        assert "$170.00" in out
        assert "$240.00" in out
        assert "4-pack" in out

    def test_grocery_cross_sell(self):
        out = run_example("grocery_cross_sell.py")
        assert "Diamond" in out
        assert "BBQ_Sauce" in out
        assert "cross-selling plan" in out

    def test_compare_recommenders(self):
        out = run_example("compare_recommenders.py")
        assert "PROF+MOA" in out
        assert "kNN" in out

    def test_figure1_moa_hierarchy(self):
        out = run_example("figure1_moa_hierarchy.py", timeout=60)
        assert "digraph MOAH" in out
        assert "<FC @ $3.5>" in out

    def test_bulk_upsell(self):
        out = run_example("bulk_upsell.py")
        assert "Recommendations by chain" in out
        assert "restored; recommendations identical" in out
