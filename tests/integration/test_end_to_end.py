"""End-to-end pipeline tests on generated datasets."""

from __future__ import annotations

import pytest

from repro.baselines import KNNRecommender, MPIRecommender
from repro.core import (
    BinaryProfit,
    MinerConfig,
    ProfitMiner,
    ProfitMinerConfig,
)
from repro.data.io import load_transactions, save_transactions
from repro.eval import EvalConfig, cross_validate, evaluate
from repro.eval.cross_validation import kfold_indices


def miner_config(min_support=0.02, use_moa=True) -> ProfitMinerConfig:
    return ProfitMinerConfig(
        mining=MinerConfig(min_support=min_support, max_body_size=2),
        use_moa=use_moa,
    )


class TestFullPipeline:
    def test_fit_evaluate_dataset_i(self, tiny_dataset_i):
        ds = tiny_dataset_i
        n = len(ds.db)
        train = ds.db.subset(range(int(n * 0.8)))
        test = ds.db.subset(range(int(n * 0.8), n))
        miner = ProfitMiner(ds.hierarchy, config=miner_config()).fit(train)
        result = evaluate(miner, test, ds.hierarchy)
        assert 0.0 < result.gain <= 1.0
        assert 0.0 < result.hit_rate <= 1.0
        assert miner.model_size >= 1

    def test_gain_denominator_is_recorded_profit(self, tiny_dataset_i):
        ds = tiny_dataset_i
        miner = ProfitMiner(ds.hierarchy, config=miner_config()).fit(ds.db)
        result = evaluate(miner, ds.db, ds.hierarchy)
        assert result.recorded_profit == pytest.approx(
            ds.db.total_recorded_profit()
        )

    def test_round_trip_through_disk_preserves_model_inputs(
        self, tiny_dataset_i, tmp_path
    ):
        ds = tiny_dataset_i
        path = tmp_path / "ds.jsonl"
        save_transactions(ds.db, path)
        restored = load_transactions(path)
        a = ProfitMiner(ds.hierarchy, config=miner_config()).fit(ds.db)
        b = ProfitMiner(ds.hierarchy, config=miner_config()).fit(restored)
        assert [s.rule for s in a.rules] == [s.rule for s in b.rules]

    def test_determinism_of_the_whole_pipeline(self, tiny_dataset_i):
        ds = tiny_dataset_i
        a = ProfitMiner(ds.hierarchy, config=miner_config()).fit(ds.db)
        b = ProfitMiner(ds.hierarchy, config=miner_config()).fit(ds.db)
        assert [s.rule for s in a.rules] == [s.rule for s in b.rules]
        basket = ds.db[0].nontarget_sales
        assert a.recommend(basket) == b.recommend(basket)

    def test_all_six_systems_complete_cv(self, tiny_dataset_i):
        ds = tiny_dataset_i
        splits = kfold_indices(len(ds.db), k=3, seed=0)
        systems = {
            "PROF+MOA": lambda: ProfitMiner(ds.hierarchy, config=miner_config()),
            "PROF-MOA": lambda: ProfitMiner(
                ds.hierarchy, config=miner_config(use_moa=False)
            ),
            "CONF+MOA": lambda: ProfitMiner(
                ds.hierarchy, profit_model=BinaryProfit(), config=miner_config()
            ),
            "kNN": KNNRecommender,
            "MPI": MPIRecommender,
        }
        for name, factory in systems.items():
            cv = cross_validate(
                factory, ds.db, ds.hierarchy, EvalConfig(), splits=splits
            )
            assert 0 <= cv.gain <= 1.0, name
            assert 0 <= cv.hit_rate <= 1.0, name

    def test_pruning_reduces_rules_by_a_large_factor(self, tiny_dataset_i):
        """Section 5.3: pre-cut rule count is typically 100s× the final."""
        ds = tiny_dataset_i
        miner = ProfitMiner(
            ds.hierarchy, config=miner_config(min_support=0.01)
        ).fit(ds.db)
        mined = len(miner.mining_result.scored_rules)
        kept = miner.model_size
        assert mined / kept > 10

    def test_moa_model_carries_more_rules(self, tiny_dataset_i):
        """Section 5.3: MOA generally increases model size (extra prices)."""
        ds = tiny_dataset_i
        with_moa = ProfitMiner(ds.hierarchy, config=miner_config()).fit(ds.db)
        without = ProfitMiner(
            ds.hierarchy, config=miner_config(use_moa=False)
        ).fit(ds.db)
        mined_with = len(with_moa.mining_result.scored_rules)
        mined_without = len(without.mining_result.scored_rules)
        assert mined_with > mined_without
