"""The README's code snippets must actually run.

Documentation rot is a bug: this test extracts the quickstart Python block
from README.md and executes it (at a reduced size for speed).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_quickstart(self):
        blocks = python_blocks()
        assert blocks, "README has no python code blocks"
        assert any("ProfitMiner" in block for block in blocks)

    @pytest.mark.slow
    def test_quickstart_block_executes(self):
        block = next(b for b in python_blocks() if "ProfitMiner" in b)
        # Shrink the dataset so the doc test stays fast; everything else
        # runs verbatim.
        block = block.replace("n_transactions=2000", "n_transactions=400")
        block = block.replace("n_items=200", "n_items=60")
        namespace: dict = {}
        exec(compile(block, str(README), "exec"), namespace)  # noqa: S102

    def test_readme_mentions_all_examples(self):
        text = README.read_text(encoding="utf-8")
        examples_dir = README.parent / "examples"
        for script in examples_dir.glob("*.py"):
            assert script.name in text, f"README does not mention {script.name}"

    def test_readme_scale_labels_match_code(self):
        from repro.eval.experiments import scale_from_env

        text = README.read_text(encoding="utf-8")
        for label in ("tiny", "small", "medium", "paper"):
            assert label in text
