"""The paper's qualitative claims, checked on reduced-scale data.

These are the acceptance criteria from DESIGN.md §4: who wins, which
direction the MOA and profit levers point, and the "profit smart" hit-rate
profile of Figure 3(d).  Absolute values differ from the paper (different
generator details, reduced scale); orderings must hold.
"""

from __future__ import annotations

import pytest

from repro.eval.behavior import behavior_x2_y30, behavior_x3_y40
from repro.eval.experiments import ExperimentScale, get_dataset
from repro.eval.harness import run_single_support
from repro.eval.metrics import EvalConfig


SCALE = ExperimentScale(
    label="shapes",
    n_transactions=1800,
    n_items=220,
    n_patterns=176,
    min_supports=(0.01,),
    spot_support=0.01,
    k_folds=3,
)


@pytest.fixture(scope="module")
def results_i():
    return run_single_support(
        get_dataset("I", SCALE),
        SCALE.spot_support,
        k_folds=SCALE.k_folds,
        max_body_size=SCALE.max_body_size,
        seed=SCALE.seed,
    )


@pytest.fixture(scope="module")
def results_ii():
    return run_single_support(
        get_dataset("II", SCALE),
        SCALE.spot_support,
        k_folds=SCALE.k_folds,
        max_body_size=SCALE.max_body_size,
        seed=SCALE.seed,
    )


class TestDatasetIOrderings:
    def test_prof_moa_wins(self, results_i):
        gains = {name: cv.gain for name, cv in results_i.items()}
        best = max(gains, key=gains.get)
        assert best == "PROF+MOA", gains

    def test_moa_beats_no_moa(self, results_i):
        gains = {name: cv.gain for name, cv in results_i.items()}
        assert gains["PROF+MOA"] > gains["PROF-MOA"]
        assert gains["CONF+MOA"] > gains["CONF-MOA"]

    def test_prof_beats_conf(self, results_i):
        gains = {name: cv.gain for name, cv in results_i.items()}
        assert gains["PROF+MOA"] > gains["CONF+MOA"]

    def test_conf_moa_hit_rate_is_high(self, results_i):
        assert results_i["CONF+MOA"].hit_rate > 0.8

    def test_gain_capped_by_saving_moa(self, results_i):
        assert all(cv.gain <= 1.0 + 1e-9 for cv in results_i.values())


class TestDatasetIIOrderings:
    def test_prof_moa_wins(self, results_ii):
        gains = {name: cv.gain for name, cv in results_ii.items()}
        assert max(gains, key=gains.get) == "PROF+MOA", gains

    def test_moa_beats_no_moa(self, results_ii):
        gains = {name: cv.gain for name, cv in results_ii.items()}
        assert gains["PROF+MOA"] > gains["PROF-MOA"]
        assert gains["CONF+MOA"] > gains["CONF-MOA"]

    def test_mpi_is_weak_with_forty_pairs(self, results_ii):
        """Dataset II's 40 item/price pairs defeat a constant recommender."""
        gains = {name: cv.gain for name, cv in results_ii.items()}
        assert gains["MPI"] < 0.6 * gains["PROF+MOA"]
        hits = {name: cv.hit_rate for name, cv in results_ii.items()}
        assert hits["MPI"] < 0.5 * hits["PROF+MOA"]


class TestProfitSmartness:
    def test_prof_moa_keeps_hit_rate_in_high_range(self, results_i):
        """Figure 3(d): kNN collapses in the High range; PROF+MOA does not."""
        prof_rows = dict(
            (label, rate)
            for label, rate, _ in results_i["PROF+MOA"].hit_rate_by_profit_range()
        )
        knn_rows = dict(
            (label, rate)
            for label, rate, _ in results_i["kNN"].hit_rate_by_profit_range()
        )
        assert prof_rows["High"] > knn_rows["High"]

    def test_prof_moa_dominates_high_range(self, results_i):
        """PROF+MOA is near-perfect on the most profitable recommendations.

        (The paper additionally reports kNN collapsing to <10% in the High
        range; our kNN identifies expensive-target segments better than the
        original, so we assert dominance rather than collapse — recorded in
        EXPERIMENTS.md.)
        """
        rows = dict(
            (label, rate)
            for label, rate, _ in results_i["PROF+MOA"].hit_rate_by_profit_range()
        )
        assert rows["High"] > 0.8


class TestBehaviorModels:
    def test_behavior_settings_lift_gain_in_order(self):
        dataset = get_dataset("I", SCALE)
        base = run_single_support(
            dataset,
            SCALE.spot_support,
            systems=("PROF+MOA",),
            k_folds=SCALE.k_folds,
            seed=SCALE.seed,
        )["PROF+MOA"].gain
        x2 = run_single_support(
            dataset,
            SCALE.spot_support,
            eval_config=EvalConfig(behavior=behavior_x2_y30(), seed=1),
            systems=("PROF+MOA",),
            k_folds=SCALE.k_folds,
            seed=SCALE.seed,
        )["PROF+MOA"].gain
        x3 = run_single_support(
            dataset,
            SCALE.spot_support,
            eval_config=EvalConfig(behavior=behavior_x3_y40(), seed=1),
            systems=("PROF+MOA",),
            k_folds=SCALE.k_folds,
            seed=SCALE.seed,
        )["PROF+MOA"].gain
        assert base < x2 < x3
