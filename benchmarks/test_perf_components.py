"""Micro-benchmarks of the pipeline components.

Unlike the figure benchmarks (single-shot experiments), these time the hot
paths with proper repetition: rule mining, covering-tree construction with
cut-optimal pruning, recommendation latency, the Quest generator and kNN
queries — plus the sweep-scale fit path (shared index cache + mine-once
support sweeps) against the sequential per-level refit it replaces.
"""

from __future__ import annotations

import json
import os
import statistics
import time

import pytest

from repro.core.covering import build_covering_tree
from repro.core.index_cache import FitCache
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig, filter_mining_result, mine_rules
from repro.core.moa import MOAHierarchy
from repro.core.profit import SavingMOA
from repro.core.pruning import PruneConfig, cut_optimal_prune
from repro.baselines.knn import KNNRecommender
from repro.data.datasets import build_dataset, dataset_i_config
from repro.data.quest import QuestConfig, QuestGenerator
from repro.eval.cross_validation import cross_validate, kfold_indices
from repro.eval.harness import (
    eval_config_for_system,
    paper_recommenders,
    run_support_sweep,
)

MINSUP = 0.01
BODY = 2


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        dataset_i_config(n_transactions=1200, n_items=150, seed=13)
    )


@pytest.fixture(scope="module")
def moa(dataset):
    return MOAHierarchy(dataset.db.catalog, dataset.hierarchy, use_moa=True)


@pytest.fixture(scope="module")
def mining_result(dataset, moa):
    return mine_rules(
        dataset.db,
        moa,
        SavingMOA(),
        MinerConfig(min_support=MINSUP, max_body_size=BODY),
    )


def test_perf_mine_rules(benchmark, dataset, moa):
    result = benchmark(
        mine_rules,
        dataset.db,
        moa,
        SavingMOA(),
        MinerConfig(min_support=MINSUP, max_body_size=BODY),
    )
    assert result.scored_rules


def test_perf_covering_and_pruning(benchmark, mining_result):
    def build_and_prune():
        tree = build_covering_tree(mining_result)
        cut_optimal_prune(tree, PruneConfig())
        return tree

    tree = benchmark(build_and_prune)
    assert len(tree) >= 1


@pytest.fixture(scope="module")
def fitted_miner(dataset):
    return ProfitMiner(
        dataset.hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=MINSUP, max_body_size=BODY)
        ),
    ).fit(dataset.db)


@pytest.fixture(scope="module")
def serving_baskets(dataset):
    return [t.nontarget_sales for t in dataset.db.transactions[:100]]


def test_perf_recommend_latency(benchmark, fitted_miner, serving_baskets):
    """Indexed batch serving over the cut-optimal recommender."""
    recommendations = benchmark(fitted_miner.recommend_many, serving_baskets)
    assert len(recommendations) == 100


def test_perf_recommend_latency_naive(benchmark, fitted_miner, serving_baskets):
    """Reference linear scan (the pre-index serving path), same workload."""
    recommender = fitted_miner.require_fitted_recommender()

    def recommend_batch():
        return [
            recommender.recommendation_rule(basket, naive=True)
            for basket in serving_baskets
        ]

    picks = benchmark(recommend_batch)
    assert len(picks) == 100


def test_perf_recommend_latency_unpruned(benchmark, fitted_miner, serving_baskets):
    """Indexed matching over the full mined rule list (pre-pruning scale)."""
    initial = fitted_miner.initial_recommender
    index = initial.rule_index  # built outside the timed region

    def match_batch():
        return [index.first_match(basket) for basket in serving_baskets]

    picks = benchmark(match_batch)
    assert len(picks) == 100


def test_perf_recommend_latency_unpruned_naive(
    benchmark, fitted_miner, serving_baskets
):
    """Linear scan over the full mined rule list — the quadratic shape."""
    initial = fitted_miner.initial_recommender

    def recommend_batch():
        return [
            initial.recommendation_rule(basket, naive=True)
            for basket in serving_baskets
        ]

    picks = benchmark(recommend_batch)
    assert len(picks) == 100


def test_perf_rule_index_build(benchmark, fitted_miner):
    """Compiling the inverted index over the full mined rule list."""
    from repro.core.rule_index import RuleMatchIndex

    initial = fitted_miner.initial_recommender
    index = benchmark(RuleMatchIndex, initial.ranked_rules, initial.moa)
    assert index.n_rules == initial.model_size


def test_perf_quest_generator(benchmark):
    generator = QuestGenerator(
        config=QuestConfig(n_items=1000, n_patterns=300), seed=1
    )
    baskets = benchmark(generator.generate, 1000)
    assert len(baskets) == 1000


def test_perf_knn_query(benchmark, dataset):
    knn = KNNRecommender(k=5).fit(dataset.db)
    baskets = [t.nontarget_sales for t in dataset.db.transactions[:100]]

    def query_batch():
        return [knn.recommend(basket) for basket in baskets]

    picks = benchmark(query_batch)
    assert len(picks) == 100


def test_perf_mine_rules_fpgrowth(benchmark, dataset, moa):
    """FP-growth backend on the same workload as the Apriori benchmark."""
    result = benchmark(
        mine_rules,
        dataset.db,
        moa,
        SavingMOA(),
        MinerConfig(min_support=MINSUP, max_body_size=BODY, algorithm="fpgrowth"),
    )
    assert result.scored_rules


# ----------------------------------------------------------------------
# Sweep-scale fit path: shared index cache + mine-once support sweeps
# ----------------------------------------------------------------------
#
# Workload: 4 rule systems x 4 support levels x 5 folds on the small
# experiment scale (pinned explicitly — the asserted speedup floor was
# calibrated at this size, so REPRO_SCALE must not move it).  The baseline
# is the pre-acceleration fit path: every (system, level, fold) cell
# builds its own index and mines from scratch.  The fast path shares one
# FitCache across all systems and folds, mines each (system, fold) cell
# once at the lowest support and derives the higher levels by
# anti-monotone filtering.  Both paths must produce identical models —
# the speedup is only meaningful if nothing was skipped.

SWEEP_SUPPORTS = (0.01, 0.02, 0.04, 0.08)
SWEEP_SYSTEMS = ("PROF+MOA", "PROF-MOA", "CONF+MOA", "CONF-MOA")
SWEEP_FOLDS = 5
SWEEP_SEED = 7
SWEEP_SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def sweep_dataset():
    return build_dataset(
        dataset_i_config(
            n_transactions=2500, n_items=300, n_patterns=240, seed=SWEEP_SEED
        )
    )


@pytest.fixture(scope="module")
def sweep_splits(sweep_dataset):
    return kfold_indices(len(sweep_dataset.db), k=SWEEP_FOLDS, seed=SWEEP_SEED)


def _sweep_factory(dataset, system, min_support):
    return paper_recommenders(
        dataset.hierarchy, min_support, max_body_size=BODY, systems=(system,)
    )[system]


def _model_signature(miner):
    """Order-sensitive fingerprint of a fitted cut-optimal model."""
    return [
        (scored.rule.body, scored.rule.head, scored.stats.rule_profit)
        for scored in miner.require_fitted_recommender().ranked_rules
    ]


def _fit_baseline(dataset, folds, cells):
    """Per-level refits, no sharing: the pre-acceleration fit path."""
    signatures = {}
    for system in SWEEP_SYSTEMS:
        for fold, train in enumerate(folds):
            for min_support in SWEEP_SUPPORTS:
                started = time.perf_counter()
                miner = _sweep_factory(dataset, system, min_support)()
                miner.fit(train)
                cells.append(
                    {
                        "system": system,
                        "fold": fold,
                        "min_support": min_support,
                        "seconds": time.perf_counter() - started,
                    }
                )
                signatures[(system, min_support, fold)] = _model_signature(miner)
    return signatures


def _fit_fast(dataset, folds, cells):
    """Shared FitCache + mine-once filtering: the accelerated fit path."""
    signatures = {}
    cache = FitCache()
    for system in SWEEP_SYSTEMS:
        factory = _sweep_factory(dataset, system, SWEEP_SUPPORTS[0])
        for fold, train in enumerate(folds):
            started = time.perf_counter()
            base = factory()
            base.fit(train, cache=cache)
            signatures[(system, SWEEP_SUPPORTS[0], fold)] = _model_signature(base)
            previous = base.mining_result
            for min_support in SWEEP_SUPPORTS[1:]:
                previous = filter_mining_result(previous, min_support)
                miner = factory.at_support(min_support)
                miner.fit_from_mining_result(previous)
                signatures[(system, min_support, fold)] = _model_signature(miner)
            cells.append(
                {
                    "system": system,
                    "fold": fold,
                    "seconds": time.perf_counter() - started,
                }
            )
    return signatures


def _bench_json_path() -> str:
    return os.environ.get("REPRO_BENCH_JSON", "BENCH_fit_path.json")


def test_perf_sweep_fit_path_speedup(sweep_dataset, sweep_splits):
    """Fit path (mine + cover + prune per cell): fast vs per-level refit.

    Asserts the accelerated path is at least ``SWEEP_SPEEDUP_FLOOR`` times
    faster (median over rounds; both paths run on the same machine back to
    back, so the ratio is robust to absolute machine speed) and that every
    one of the 80 cells produced an identical model.  Timings land in
    ``BENCH_fit_path.json`` for the CI artifact.
    """
    dataset = sweep_dataset
    folds = [dataset.db.subset(train) for train, _ in sweep_splits]

    fast_cells: list[dict] = []
    baseline_cells: list[dict] = []
    fast_rounds: list[float] = []
    baseline_rounds: list[float] = []
    fast_signatures = baseline_signatures = None

    for _ in range(3):
        started = time.perf_counter()
        fast_signatures = _fit_fast(dataset, folds, fast_cells)
        fast_rounds.append(time.perf_counter() - started)
        fast_cells = fast_cells[: len(SWEEP_SYSTEMS) * SWEEP_FOLDS]
    for _ in range(2):
        started = time.perf_counter()
        baseline_signatures = _fit_baseline(dataset, folds, baseline_cells)
        baseline_rounds.append(time.perf_counter() - started)
        baseline_cells = baseline_cells[
            : len(SWEEP_SYSTEMS) * SWEEP_FOLDS * len(SWEEP_SUPPORTS)
        ]

    assert baseline_signatures == fast_signatures, (
        "accelerated fit path diverged from the per-level refit"
    )

    median_fast = statistics.median(fast_rounds)
    median_baseline = statistics.median(baseline_rounds)
    speedup = median_baseline / median_fast

    report = {
        "workload": {
            "n_transactions": 2500,
            "n_items": 300,
            "n_patterns": 240,
            "seed": SWEEP_SEED,
            "systems": list(SWEEP_SYSTEMS),
            "min_supports": list(SWEEP_SUPPORTS),
            "k_folds": SWEEP_FOLDS,
        },
        "fit_path": {
            "fast_rounds_s": fast_rounds,
            "baseline_rounds_s": baseline_rounds,
            "median_fast_s": median_fast,
            "median_baseline_s": median_baseline,
            "speedup": speedup,
            "floor": SWEEP_SPEEDUP_FLOOR,
        },
        "cells": {"fast": fast_cells, "baseline": baseline_cells},
        "identical_models": True,
    }
    path = _bench_json_path()
    existing = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing.update(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)

    print(
        f"\nfit path: fast median {median_fast:.2f}s vs baseline median "
        f"{median_baseline:.2f}s -> {speedup:.2f}x (floor "
        f"{SWEEP_SPEEDUP_FLOOR:.1f}x), 80/80 cells identical"
    )
    assert speedup >= SWEEP_SPEEDUP_FLOOR, (
        f"fit-path speedup {speedup:.2f}x below the {SWEEP_SPEEDUP_FLOOR}x "
        f"floor (fast {fast_rounds}, baseline {baseline_rounds})"
    )


def test_perf_sweep_end_to_end(sweep_dataset, sweep_splits):
    """Whole-sweep wall clock (fit + evaluate), reported without a gate.

    Evaluation is identical work on both paths, so the end-to-end ratio
    sits below the fit-only one; the number is recorded for the benchmark
    log rather than asserted.  The baseline is an independent per-level
    ``cross_validate`` loop — the literal pre-acceleration driver.
    """
    dataset = sweep_dataset

    started = time.perf_counter()
    sweep = run_support_sweep(
        dataset,
        SWEEP_SUPPORTS,
        systems=SWEEP_SYSTEMS,
        k_folds=SWEEP_FOLDS,
        max_body_size=BODY,
        seed=SWEEP_SEED,
    )
    fast_s = time.perf_counter() - started

    started = time.perf_counter()
    baseline_gains = {}
    for system in SWEEP_SYSTEMS:
        for min_support in SWEEP_SUPPORTS:
            factory = _sweep_factory(dataset, system, min_support)
            cv = cross_validate(
                factory,
                dataset.db,
                dataset.hierarchy,
                eval_config_for_system(None, system),
                splits=sweep_splits,
            )
            baseline_gains[(system, min_support)] = cv.gain
    baseline_s = time.perf_counter() - started

    fast_gains = {
        (point.system, point.min_support): point.gain for point in sweep.points
    }
    assert fast_gains == baseline_gains

    speedup = baseline_s / fast_s
    path = _bench_json_path()
    existing = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing["sweep_end_to_end"] = {
        "fast_s": fast_s,
        "baseline_s": baseline_s,
        "speedup": speedup,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)

    print(
        f"\nend-to-end sweep: {fast_s:.2f}s vs per-level cross_validate "
        f"{baseline_s:.2f}s -> {speedup:.2f}x"
    )
