"""Micro-benchmarks of the pipeline components.

Unlike the figure benchmarks (single-shot experiments), these time the hot
paths with proper repetition: rule mining, covering-tree construction with
cut-optimal pruning, recommendation latency, the Quest generator and kNN
queries.
"""

from __future__ import annotations

import pytest

from repro.core.covering import build_covering_tree
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig, mine_rules
from repro.core.moa import MOAHierarchy
from repro.core.profit import SavingMOA
from repro.core.pruning import PruneConfig, cut_optimal_prune
from repro.baselines.knn import KNNRecommender
from repro.data.datasets import build_dataset, dataset_i_config
from repro.data.quest import QuestConfig, QuestGenerator

MINSUP = 0.01
BODY = 2


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        dataset_i_config(n_transactions=1200, n_items=150, seed=13)
    )


@pytest.fixture(scope="module")
def moa(dataset):
    return MOAHierarchy(dataset.db.catalog, dataset.hierarchy, use_moa=True)


@pytest.fixture(scope="module")
def mining_result(dataset, moa):
    return mine_rules(
        dataset.db,
        moa,
        SavingMOA(),
        MinerConfig(min_support=MINSUP, max_body_size=BODY),
    )


def test_perf_mine_rules(benchmark, dataset, moa):
    result = benchmark(
        mine_rules,
        dataset.db,
        moa,
        SavingMOA(),
        MinerConfig(min_support=MINSUP, max_body_size=BODY),
    )
    assert result.scored_rules


def test_perf_covering_and_pruning(benchmark, mining_result):
    def build_and_prune():
        tree = build_covering_tree(mining_result)
        cut_optimal_prune(tree, PruneConfig())
        return tree

    tree = benchmark(build_and_prune)
    assert len(tree) >= 1


@pytest.fixture(scope="module")
def fitted_miner(dataset):
    return ProfitMiner(
        dataset.hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=MINSUP, max_body_size=BODY)
        ),
    ).fit(dataset.db)


@pytest.fixture(scope="module")
def serving_baskets(dataset):
    return [t.nontarget_sales for t in dataset.db.transactions[:100]]


def test_perf_recommend_latency(benchmark, fitted_miner, serving_baskets):
    """Indexed batch serving over the cut-optimal recommender."""
    recommendations = benchmark(fitted_miner.recommend_many, serving_baskets)
    assert len(recommendations) == 100


def test_perf_recommend_latency_naive(benchmark, fitted_miner, serving_baskets):
    """Reference linear scan (the pre-index serving path), same workload."""
    recommender = fitted_miner.require_fitted_recommender()

    def recommend_batch():
        return [
            recommender.recommendation_rule(basket, naive=True)
            for basket in serving_baskets
        ]

    picks = benchmark(recommend_batch)
    assert len(picks) == 100


def test_perf_recommend_latency_unpruned(benchmark, fitted_miner, serving_baskets):
    """Indexed matching over the full mined rule list (pre-pruning scale)."""
    initial = fitted_miner.initial_recommender
    index = initial.rule_index  # built outside the timed region

    def match_batch():
        return [index.first_match(basket) for basket in serving_baskets]

    picks = benchmark(match_batch)
    assert len(picks) == 100


def test_perf_recommend_latency_unpruned_naive(
    benchmark, fitted_miner, serving_baskets
):
    """Linear scan over the full mined rule list — the quadratic shape."""
    initial = fitted_miner.initial_recommender

    def recommend_batch():
        return [
            initial.recommendation_rule(basket, naive=True)
            for basket in serving_baskets
        ]

    picks = benchmark(recommend_batch)
    assert len(picks) == 100


def test_perf_rule_index_build(benchmark, fitted_miner):
    """Compiling the inverted index over the full mined rule list."""
    from repro.core.rule_index import RuleMatchIndex

    initial = fitted_miner.initial_recommender
    index = benchmark(RuleMatchIndex, initial.ranked_rules, initial.moa)
    assert index.n_rules == initial.model_size


def test_perf_quest_generator(benchmark):
    generator = QuestGenerator(
        config=QuestConfig(n_items=1000, n_patterns=300), seed=1
    )
    baskets = benchmark(generator.generate, 1000)
    assert len(baskets) == 1000


def test_perf_knn_query(benchmark, dataset):
    knn = KNNRecommender(k=5).fit(dataset.db)
    baskets = [t.nontarget_sales for t in dataset.db.transactions[:100]]

    def query_batch():
        return [knn.recommend(basket) for basket in baskets]

    picks = benchmark(query_batch)
    assert len(picks) == 100


def test_perf_mine_rules_fpgrowth(benchmark, dataset, moa):
    """FP-growth backend on the same workload as the Apriori benchmark."""
    result = benchmark(
        mine_rules,
        dataset.db,
        moa,
        SavingMOA(),
        MinerConfig(min_support=MINSUP, max_body_size=BODY, algorithm="fpgrowth"),
    )
    assert result.scored_rules
