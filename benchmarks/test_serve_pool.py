"""Worker-pool serving gates: identity, throughput scaling, shared memory.

Boots the real pre-fork pool (``repro.serve.pool``) on the standard
1500-transaction dataset-I model and holds it to the three claims that
justify its existence:

* **identity** — a pool answers every request bit-identically to the
  single-process daemon (raw response bytes compared, not just parsed
  fields): scaling out never changes recommendations.
* **throughput** — aggregate batch throughput at ``POOL_WORKERS``
  workers is at least ``SCALING_FLOOR``× one worker's, measured with
  raw-socket clients (pre-encoded requests, minimal parsing) so the
  client side never becomes the bottleneck.  The multiplier is asserted
  only when the machine actually has ``POOL_WORKERS`` CPUs to scale
  onto — on smaller runners the measured numbers still land in the
  report, flagged as gated.
* **memory** — fork-shared model pages keep ``POOL_WORKERS`` workers'
  summed proportional-set-size (PSS) within ``MEMORY_CEILING``× a
  single worker's: N workers cost one model plus per-worker scratch,
  not N models.  This gate runs over a larger world
  (``MEMORY_TXNS`` transactions) where the loaded model actually
  dominates interpreter scratch — the regime the claim is about.

Numbers land in ``BENCH_serve_pool.json`` for the CI artifact.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import socket
import threading
import time

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.datasets import build_dataset, dataset_i_config
from repro.data.model_io import save_model
from repro.serve import BackgroundDaemon, BackgroundPool, PoolConfig, ServeConfig

MINSUP = 0.01
BODY = 2
BATCH_SIZE = 100
POOL_WORKERS = int(os.environ.get("REPRO_BENCH_POOL_WORKERS", 4))
SCALING_FLOOR = float(os.environ.get("REPRO_BENCH_POOL_FLOOR", 2.5))
N_THROUGHPUT_BASKETS = int(os.environ.get("REPRO_BENCH_POOL_BASKETS", 40_000))
MEMORY_CEILING = 2.0  # pool(N) PSS sum vs pool(1) PSS sum
#: The memory gate serves a much larger world (postings over this many
#: transactions) so the fork-shared model pages dominate per-worker
#: interpreter scratch — that is the regime the ≤2x claim is about.
MEMORY_TXNS = int(os.environ.get("REPRO_BENCH_POOL_MEM_TXNS", 20_000))
N_MEMORY_BASKETS = 10_000
N_IDENTITY_REQUESTS = 60


def _fit_world(n_transactions: int, n_items: int, tmp_path_factory, tag: str):
    dataset = build_dataset(
        dataset_i_config(
            n_transactions=n_transactions, n_items=n_items, seed=11
        )
    )
    miner = ProfitMiner(
        dataset.hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=MINSUP, max_body_size=BODY)
        ),
    ).fit(dataset.db)
    path = tmp_path_factory.mktemp(tag) / "model.json"
    save_model(miner.require_fitted_recommender(), path)
    payloads = [
        [
            {"item": s.item_id, "promo": s.promo_code, "quantity": s.quantity}
            for s in t.nontarget_sales
        ]
        for t in dataset.db.transactions[:2000]
    ]
    return str(path), payloads


@pytest.fixture(scope="module")
def serving_world(tmp_path_factory):
    """The standard 1500-transaction serving workload (as the daemon gate)."""
    return _fit_world(1500, 150, tmp_path_factory, "pool_model")


@pytest.fixture(scope="module")
def big_world(tmp_path_factory):
    """A world whose loaded model dwarfs per-worker interpreter scratch."""
    return _fit_world(MEMORY_TXNS, 300, tmp_path_factory, "pool_model_big")


def _write_report(section: dict) -> None:
    path = os.environ.get(
        "REPRO_BENCH_SERVE_POOL_JSON", "BENCH_serve_pool.json"
    )
    existing = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing.setdefault("serve_pool", {}).update(section)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)


# ---------------------------------------------------------------------------
# Raw-socket client: pre-encoded requests, cheap framing-only parsing, so
# measured throughput is the server's, not ``http.client``'s.
# ---------------------------------------------------------------------------

_LENGTH_RE = re.compile(rb"content-length:\s*(\d+)", re.IGNORECASE)


def _encode_request(path: str, payload: object) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return (
        f"POST {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode("latin-1") + body


class _RawConnection:
    """One keep-alive socket speaking just enough HTTP to frame responses."""

    def __init__(self, port: int) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buffer = b""

    def request(self, raw: bytes) -> bytes:
        """Send one pre-encoded request, return the full raw response."""
        self.sock.sendall(raw)
        while b"\r\n\r\n" not in self.buffer:
            self._fill()
        head, _, rest = self.buffer.partition(b"\r\n\r\n")
        match = _LENGTH_RE.search(head)
        assert match is not None, head
        length = int(match.group(1))
        while len(rest) < length:
            self.buffer = rest
            self._fill()
            rest = self.buffer
        self.buffer = rest[length:]
        return head + b"\r\n\r\n" + rest[:length]

    def _fill(self) -> None:
        chunk = self.sock.recv(1 << 16)
        if not chunk:
            raise ConnectionError("server closed the connection")
        self.buffer += chunk

    def close(self) -> None:
        self.sock.close()


def _drive_throughput(
    port: int, batches: list[tuple[bytes, int]], n_clients: int, target: int
) -> float:
    """``target`` baskets through ``n_clients`` concurrent raw connections.

    Returns sustained baskets/second over the whole window.  Every client
    thread gets its own connection and an equal share of the target, so
    the same client capacity drives the 1-worker baseline and the pool.
    """
    share = target // n_clients
    errors: list[BaseException] = []

    def client(offset: int) -> None:
        try:
            conn = _RawConnection(port)
            try:
                served = 0
                index = offset  # stagger so clients hit distinct batches
                while served < share:
                    raw, size = batches[index % len(batches)]
                    index += 1
                    response = conn.request(raw)
                    assert response.startswith(b"HTTP/1.1 200"), response[:64]
                    served += size
            finally:
                conn.close()
        except BaseException as exc:  # surface on the bench thread
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i * 7,))
        for i in range(n_clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return (share * n_clients) / elapsed


def _pss_bytes(pid: int) -> int | None:
    """Proportional set size of one process (None where unsupported).

    PSS charges each shared page 1/N to each of its N mappers, so the
    *sum* over the pool is the honest aggregate footprint: fork-shared
    model pages count once no matter how many workers map them.
    """
    try:
        with open(f"/proc/{pid}/smaps_rollup", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def test_pool_responses_bit_identical_to_single_daemon(serving_world):
    """Every raw response byte from the pool matches the single daemon."""
    model_path, payloads = serving_world
    config = ServeConfig(port=0, max_batch_size=64, max_linger_ms=0.0)
    requests = [
        _encode_request("/recommend", {"basket": payloads[i]})
        for i in range(N_IDENTITY_REQUESTS)
    ] + [
        _encode_request(
            "/recommend_batch",
            {"baskets": payloads[i : i + BATCH_SIZE]},
        )
        for i in range(0, 5 * BATCH_SIZE, BATCH_SIZE)
    ] + [
        _encode_request("/query", {"shape": "concept", "top": 25}),
        _encode_request("/query", {"min_conf": 0.5, "top": 50}),
    ]

    def collect(port: int) -> list[bytes]:
        conn = _RawConnection(port)
        try:
            return [conn.request(raw) for raw in requests]
        finally:
            conn.close()

    with BackgroundDaemon(model_path, config) as daemon:
        single = collect(daemon.port)
    with BackgroundPool(
        model_path, config, PoolConfig(workers=POOL_WORKERS)
    ) as pool:
        # Several passes over fresh connections so the kernel spreads
        # them across different workers; all must answer identically.
        pooled_runs = [collect(pool.port) for _ in range(3)]

    mismatches = 0
    for pooled in pooled_runs:
        for expected, got in zip(single, pooled):
            if expected != got:
                mismatches += 1
    _write_report(
        {
            "identity": {
                "n_requests_compared": len(requests) * len(pooled_runs),
                "workers": POOL_WORKERS,
                "mismatches": mismatches,
            }
        }
    )
    assert mismatches == 0, (
        f"{mismatches} pool responses differed from the single daemon"
    )


def _batch_requests(payloads) -> list[tuple[bytes, int]]:
    return [
        (
            _encode_request(
                "/recommend_batch", {"baskets": payloads[i : i + BATCH_SIZE]}
            ),
            len(payloads[i : i + BATCH_SIZE]),
        )
        for i in range(0, len(payloads), BATCH_SIZE)
    ]


def test_pool_throughput_scaling(serving_world):
    """Aggregate throughput multiplies across workers.

    The multiplier gate is enforced only when the machine has at least
    ``POOL_WORKERS`` CPUs — kernel balancing cannot multiply throughput
    beyond the cores that exist.  The measured numbers land in the
    report either way.
    """
    model_path, payloads = serving_world
    config = ServeConfig(port=0, max_batch_size=64, max_linger_ms=0.0)
    batches = _batch_requests(payloads)
    n_clients = max(POOL_WORKERS, 2)
    warmup = max(2_000, N_THROUGHPUT_BASKETS // 10)

    def measure(workers: int) -> float:
        with BackgroundPool(
            model_path, config, PoolConfig(workers=workers)
        ) as pool:
            _drive_throughput(pool.port, batches, n_clients, warmup)
            return _drive_throughput(
                pool.port, batches, n_clients, N_THROUGHPUT_BASKETS
            )

    single_throughput = measure(1)
    pool_throughput = measure(POOL_WORKERS)
    speedup = pool_throughput / single_throughput
    cpus = len(os.sched_getaffinity(0))
    scaling_gated = cpus >= POOL_WORKERS

    _write_report(
        {
            "throughput_workload": {
                "n_transactions": 1500,
                "n_items": 150,
                "seed": 11,
                "min_support": MINSUP,
                "batch_size": BATCH_SIZE,
                "n_throughput_baskets": N_THROUGHPUT_BASKETS,
                "n_client_threads": n_clients,
                "cpus": cpus,
            },
            "single_worker_baskets_per_s": single_throughput,
            "pool_workers": POOL_WORKERS,
            "pool_baskets_per_s": pool_throughput,
            "speedup": speedup,
            "scaling_floor": SCALING_FLOOR,
            "scaling_gate_enforced": scaling_gated,
        }
    )
    print(
        f"\npool scaling: 1 worker {single_throughput:,.0f} baskets/s, "
        f"{POOL_WORKERS} workers {pool_throughput:,.0f} baskets/s "
        f"({speedup:.2f}x, floor {SCALING_FLOOR}x "
        f"{'enforced' if scaling_gated else f'not enforced: {cpus} CPUs'})"
    )
    if scaling_gated:
        assert speedup >= SCALING_FLOOR, (
            f"aggregate throughput only {speedup:.2f}x one worker "
            f"(floor {SCALING_FLOOR}x at {POOL_WORKERS} workers)"
        )


def _spawn_cli_pool(model_path: str, workers: int):
    """``profit-mining serve --workers N`` as a subprocess; returns it + port."""
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--model", model_path,
            "--workers", str(workers),
            "--port", "0",
            "--max-linger-ms", "0.0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    port = None
    assert proc.stdout is not None
    for line in proc.stdout:
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        raise AssertionError("serve subprocess never announced its port")
    return proc, port


def _child_pids(pid: int) -> list[int]:
    with open(f"/proc/{pid}/task/{pid}/children", encoding="ascii") as handle:
        return [int(entry) for entry in handle.read().split()]


def test_pool_shares_model_memory_across_workers(big_world):
    """An N-worker deployment stays within ``MEMORY_CEILING``x a 1-worker one.

    Runs the real CLI (``serve --workers N``) in a subprocess and sums
    proportional set size (PSS) over the whole deployment — the single
    daemon process for ``--workers 1``, supervisor plus every forked
    worker for the pool — so each physical page is counted exactly once.
    Over a world big enough that the loaded model dominates interpreter
    scratch, per-worker copies would push the ratio toward N; fork
    sharing keeps it under 2.
    """
    model_path, payloads = big_world
    if _pss_bytes(os.getpid()) is None:
        pytest.skip("smaps_rollup unavailable; cannot measure PSS here")
    batches = _batch_requests(payloads)
    n_clients = max(POOL_WORKERS, 2)

    def measure(workers: int) -> int:
        proc, port = _spawn_cli_pool(model_path, workers)
        try:
            _drive_throughput(port, batches, n_clients, N_MEMORY_BASKETS)
            pids = [proc.pid] + _child_pids(proc.pid)
            assert len(pids) == (1 if workers == 1 else workers + 1), pids
            values = [_pss_bytes(pid) for pid in pids]
            assert all(value is not None for value in values)
            return sum(values)
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=15)
            except Exception:
                proc.kill()

    single_pss = measure(1)
    pool_pss = measure(POOL_WORKERS)
    memory_ratio = pool_pss / single_pss

    _write_report(
        {
            "memory_workload": {
                "n_transactions": MEMORY_TXNS,
                "n_items": 300,
                "seed": 11,
                "min_support": MINSUP,
                "n_warm_baskets": N_MEMORY_BASKETS,
            },
            "single_worker_pss_bytes": single_pss,
            "pool_pss_bytes": pool_pss,
            "memory_ratio": memory_ratio,
            "memory_ceiling": MEMORY_CEILING,
        }
    )
    print(
        f"\npool memory: 1 worker {single_pss / 1e6:,.0f}MB, "
        f"{POOL_WORKERS} workers {pool_pss / 1e6:,.0f}MB "
        f"({memory_ratio:.2f}x, ceiling {MEMORY_CEILING}x)"
    )
    assert memory_ratio <= MEMORY_CEILING, (
        f"{POOL_WORKERS} workers use {memory_ratio:.2f}x one worker's "
        f"memory, above the {MEMORY_CEILING}x ceiling — fork sharing "
        f"is not working"
    )
