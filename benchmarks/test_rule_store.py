"""Rule-store benchmark gates: serving parity, query speed, tenant memory.

Three claims of the shape-split columnar :class:`~repro.core.rulestore.
RuleStore` are checked on a mined model of ~20k rules (the unpruned
initial recommender of the ``test_serve_cold`` workload):

1. **Serving parity** — a store-backed (format v3) load serves picks
   bit-identical to the in-memory fit and its lazy ranked view
   reconstitutes the exact legacy ranked list.
2. **Query speed** — audit queries answered from the per-shape inverted
   postings are at least ``QUERY_SPEEDUP_FLOOR``× faster than the
   ``naive=True`` linear scan over the materialized view (the floor is
   asserted at the ≥15k-rule scale the claim is about; reduced CI runs
   still check a sanity floor).
3. **Tenant memory** — eight resident models served from the columnar
   store through one shared :class:`~repro.data.model_io.WorldCache`
   (the multi-tenant daemon's configuration) allocate at least
   ``MEMORY_SAVING_FLOOR`` less traced memory than eight independent
   pre-store loads (format v2, which materializes one Python object per
   rule and re-interns its own symbol universe per model), measured by
   ``tracemalloc`` in isolated subprocesses.  The world-sharing delta
   alone (v3 shared vs v3 independent) is reported alongside.

Workload size is env-tunable for CI smoke runs
(``REPRO_BENCH_RULESTORE_TXNS`` / ``_ITEMS`` / ``_MINSUP``); results land
in ``BENCH_rule_store.json`` for the CI artifact.
"""

from __future__ import annotations

import itertools
import json
import os
import time

import pytest

from benchmarks._common import run_isolated
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.rulestore import SHAPES
from repro.data.datasets import build_dataset, dataset_i_config
from repro.data.model_io import load_model, save_model

N_TXNS = int(os.environ.get("REPRO_BENCH_RULESTORE_TXNS", "1500"))
N_ITEMS = int(os.environ.get("REPRO_BENCH_RULESTORE_ITEMS", "150"))
MINSUP = float(os.environ.get("REPRO_BENCH_RULESTORE_MINSUP", "0.005"))
BODY = 2
SEED = 11
N_BASKETS = 500
N_TENANTS = 8
QUERY_ROUNDS = 3
#: The ≥10x audit-query claim, asserted at the ≥15k-rule scale it is
#: made about; smoke-scale runs assert the sanity floor instead.
QUERY_SPEEDUP_FLOOR = 10.0
QUERY_SPEEDUP_SANITY = 2.0
QUERY_GATE_MIN_RULES = 15_000
#: Eight store-backed shared-world tenants must allocate >= 30% less
#: than eight independent pre-store (v2) loads.
MEMORY_SAVING_FLOOR = 0.30


def _bench_json_path() -> str:
    return os.environ.get(
        "REPRO_BENCH_RULESTORE_JSON", "BENCH_rule_store.json"
    )


def _write_report(section: str, body: dict) -> None:
    path = _bench_json_path()
    existing = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing[section] = body
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        dataset_i_config(n_transactions=N_TXNS, n_items=N_ITEMS, seed=SEED)
    )


@pytest.fixture(scope="module")
def unpruned_recommender(dataset):
    miner = ProfitMiner(
        dataset.hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=MINSUP, max_body_size=BODY)
        ),
    ).fit(dataset.db)
    return miner.initial_recommender


@pytest.fixture(scope="module")
def artifact(tmp_path_factory, unpruned_recommender):
    path = tmp_path_factory.mktemp("rule_store_bench") / "model_v3.json"
    save_model(unpruned_recommender, path)  # v3 default
    return path


@pytest.fixture(scope="module")
def legacy_artifact(tmp_path_factory, unpruned_recommender):
    path = tmp_path_factory.mktemp("rule_store_bench") / "model_v2.json"
    save_model(unpruned_recommender, path, version=2)
    return path


@pytest.fixture(scope="module")
def baskets(dataset):
    transactions = itertools.cycle(dataset.db.transactions)
    return [next(transactions).nontarget_sales for _ in range(N_BASKETS)]


def test_gate_store_backed_serving_is_bit_identical(
    artifact, unpruned_recommender, baskets
):
    """Gate (a): v3 store-backed serving == in-memory fit, pick for pick."""
    restored = load_model(artifact)
    original_picks = unpruned_recommender.recommend_many(baskets)
    restored_picks = restored.recommend_many(baskets)
    identical = [
        (a.item_id, a.promo_code) == (b.item_id, b.promo_code)
        for a, b in zip(original_picks, restored_picks)
    ]
    assert all(identical), f"{identical.count(False)} picks diverged"
    # The lazy view reconstitutes the exact legacy ranked order.
    legacy = list(unpruned_recommender.ranked_rules)
    view = restored.ranked_rules
    assert len(view) == len(legacy)
    assert [s.rule for s in view] == [s.rule for s in legacy]
    assert [s.stats for s in view] == [s.stats for s in legacy]
    _write_report(
        "serving_parity",
        {
            "n_rules": unpruned_recommender.model_size,
            "n_baskets": N_BASKETS,
            "identical_picks": True,
            "view_identical": True,
        },
    )
    print(
        f"\nstore-backed serving: {N_BASKETS}/{N_BASKETS} picks identical "
        f"over {unpruned_recommender.model_size} rules"
    )


def _query_workload(store):
    """A realistic audit mix: heads, concepts, shapes, mentions, floors."""
    heads = sorted(
        {s.rule.head for s in store.view},
        key=lambda h: (h.node, h.promo or ""),
    )
    concepts = sorted(
        {
            g.node
            for s in store.view
            for g in s.rule.body
            if g.promo is None and g.node
        }
    )[:8]
    workload = []
    for head in heads[:12]:
        workload.append({"head_promo": head.promo, "head_item": head.node})
    for concept in concepts:
        workload.append({"head_under": concept})
        workload.append({"body_mentions": [f"[{concept}]"]})
    for shape in SHAPES:
        workload.append({"shape": shape, "min_conf": 0.2})
    workload.append({"min_support": 0.01, "top": 50})
    return workload


def test_gate_indexed_queries_beat_naive_scan(unpruned_recommender):
    """Gate (b): audit queries >= 10x faster than the linear scan."""
    store = unpruned_recommender.rule_store
    n_rules = store.n_rules
    list(store.view)  # pre-materialize: time query logic, not rule building
    workload = _query_workload(store)

    # Parity first: the speed claim is only meaningful if both paths
    # return the same hits.
    for kwargs in workload:
        indexed = [h.rank for h in store.query(**kwargs)]
        naive = [h.rank for h in store.query(naive=True, **kwargs)]
        assert indexed == naive, f"query {kwargs} diverged"

    indexed_s = naive_s = 0.0
    for _ in range(QUERY_ROUNDS):
        started = time.perf_counter()
        for kwargs in workload:
            store.query(**kwargs)
        indexed_s += time.perf_counter() - started
        started = time.perf_counter()
        for kwargs in workload:
            store.query(naive=True, **kwargs)
        naive_s += time.perf_counter() - started
    speedup = naive_s / indexed_s if indexed_s else float("inf")

    at_claim_scale = n_rules >= QUERY_GATE_MIN_RULES
    floor = QUERY_SPEEDUP_FLOOR if at_claim_scale else QUERY_SPEEDUP_SANITY
    _write_report(
        "query_speedup",
        {
            "n_rules": n_rules,
            "n_queries": len(workload),
            "rounds": QUERY_ROUNDS,
            "indexed_s": indexed_s,
            "naive_s": naive_s,
            "speedup": speedup,
            "floor": floor,
            "at_claim_scale": at_claim_scale,
        },
    )
    print(
        f"\naudit queries over {n_rules} rules: indexed {indexed_s:.3f}s vs "
        f"naive {naive_s:.3f}s -> {speedup:.1f}x (floor {floor:.0f}x, "
        f"{len(workload)} queries x {QUERY_ROUNDS} rounds)"
    )
    assert speedup >= floor, (
        f"indexed queries only {speedup:.1f}x faster than the naive scan "
        f"(floor {floor}x at {n_rules} rules)"
    )


_TENANT_SNIPPET = """
import json, os, tracemalloc
from repro.data.model_io import WorldCache, load_model

path = os.environ["BENCH_MODEL_PATH"]
n = int(os.environ["BENCH_N_TENANTS"])
shared = os.environ["BENCH_SHARED"] == "1"
tracemalloc.start()
worlds = WorldCache() if shared else None
models = [load_model(path, worlds=worlds) for _ in range(n)]
for model in models:
    model.recommend([])  # force the serving index: resident means warm
current, peak = tracemalloc.get_traced_memory()
print(json.dumps({
    "resident_bytes": current,
    "peak_bytes": peak,
    "n_models": len(models),
    "n_worlds": len(worlds) if worlds is not None else n,
}))
"""


def _resident_bytes(artifact, shared):
    result = run_isolated(
        _TENANT_SNIPPET,
        env={
            "BENCH_MODEL_PATH": str(artifact),
            "BENCH_N_TENANTS": str(N_TENANTS),
            "BENCH_SHARED": "1" if shared else "0",
        },
    )
    assert result["n_models"] == N_TENANTS
    return result


def test_gate_shared_store_tenancy_saves_memory(artifact, legacy_artifact):
    """Gate (c): 8 store-backed shared-world tenants vs 8 v2 loads."""
    # The pre-store architecture: each independent v2 load materializes
    # one Python object per rule and interns its own symbol universe.
    independent = _resident_bytes(legacy_artifact, shared=False)
    # The multi-tenant daemon's architecture: columnar v3 stores, one
    # shared symbol universe across every resident model.
    shared = _resident_bytes(artifact, shared=True)
    assert shared["n_worlds"] == 1
    # World sharing in isolation (same columnar format both sides), so
    # the report separates the column win from the shared-universe win.
    v3_independent = _resident_bytes(artifact, shared=False)
    saving = 1.0 - shared["resident_bytes"] / independent["resident_bytes"]
    worlds_saving = (
        1.0 - shared["resident_bytes"] / v3_independent["resident_bytes"]
    )
    _write_report(
        "tenant_memory",
        {
            "n_tenants": N_TENANTS,
            "independent_v2_bytes": independent["resident_bytes"],
            "independent_v3_bytes": v3_independent["resident_bytes"],
            "shared_v3_bytes": shared["resident_bytes"],
            "saving": saving,
            "world_sharing_saving": worlds_saving,
            "floor": MEMORY_SAVING_FLOOR,
        },
    )
    print(
        f"\n{N_TENANTS} resident models: store-backed shared world "
        f"{shared['resident_bytes'] / 1e6:.1f}MB vs independent v2 loads "
        f"{independent['resident_bytes'] / 1e6:.1f}MB -> {saving:.0%} saved "
        f"(floor {MEMORY_SAVING_FLOOR:.0%}; world sharing alone "
        f"{worlds_saving:.0%} vs v3 independent "
        f"{v3_independent['resident_bytes'] / 1e6:.1f}MB)"
    )
    assert saving >= MEMORY_SAVING_FLOOR, (
        f"store-backed shared-world tenancy saved only {saving:.0%} "
        f"(floor {MEMORY_SAVING_FLOOR:.0%})"
    )
