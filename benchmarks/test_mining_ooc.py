"""Out-of-core mining benchmarks: SON partitioned backend gates.

Three gates for ``MinerConfig(backend="ooc")`` (``repro.core.partition``
over ``repro.core.engine.store``):

1. **Parity** — on a ~100k-transaction workload the out-of-core mine
   (including spilling the store to disk) finishes within
   ``OOC_OVERHEAD_CEILING``× the dense in-RAM mine (including its index
   build), and the two :class:`~repro.core.mining.MiningResult`\\ s are
   bit-identical.
2. **Bounded memory** — a multi-million-transaction database is
   generated *streamed* into a store and mined in a fresh subprocess
   under a fixed ``max_resident_mb`` budget; the subprocess's peak RSS
   (``ru_maxrss``) must stay under ``REPRO_BENCH_OOC_RSS_MB``, and the
   peak *beyond the returned result's own tid-masks* under
   ``REPRO_BENCH_OOC_OVERHEAD_MB``.  The second bound is the sharper
   claim: a ``MiningResult`` carries one n-bit mask per emitted body —
   Θ(rules × n), ~0.9 GB at 1M transactions — which every backend's
   *output* costs, so the gate pins what the out-of-core path actually
   controls: working memory on top of that output stays flat (store
   resident budget + bounded counting batches).  The subprocess
   isolation matters: ``ru_maxrss`` is process-lifetime peak (see
   :func:`benchmarks._common.run_isolated`).
3. **Incremental refresh** — appending +10% new transactions and
   refreshing (:func:`~repro.core.partition.refresh_store`) is at least
   ``REFRESH_SPEEDUP_FLOOR``× faster than re-ingesting and re-mining the
   grown database from scratch, with identical results.

Scale knobs (the CI perf-smoke job runs reduced):

* ``REPRO_BENCH_OOC_TXNS`` — parity/refresh workload (default 100 000),
* ``REPRO_BENCH_OOC_LARGE_TXNS`` — bounded-memory workload
  (default 1 000 000),
* ``REPRO_BENCH_OOC_RESIDENT_MB`` — store resident budget (default 64),
* ``REPRO_BENCH_OOC_RSS_MB`` — subprocess peak-RSS ceiling (default 1536),
* ``REPRO_BENCH_OOC_OVERHEAD_MB`` — ceiling on peak RSS *minus* the
  result's tid-mask bytes (default 512),
* ``REPRO_BENCH_OOC_JSON`` — report path (default ``BENCH_mining_ooc.json``).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks._common import run_isolated
from repro.core.engine.kernel import HAVE_NUMPY
from repro.core.engine.store import ChunkedTransactionStore
from repro.core.mining import MinerConfig, mine_rules
from repro.core.moa import MOAHierarchy
from repro.core.partition import mine_store, refresh_store
from repro.core.profit import SavingMOA
from repro.data.datasets import build_dataset, dataset_i_config

N_TRANSACTIONS = int(os.environ.get("REPRO_BENCH_OOC_TXNS", "100000"))
N_LARGE = int(os.environ.get("REPRO_BENCH_OOC_LARGE_TXNS", "1000000"))
RESIDENT_MB = float(os.environ.get("REPRO_BENCH_OOC_RESIDENT_MB", "64"))
RSS_CEILING_MB = float(os.environ.get("REPRO_BENCH_OOC_RSS_MB", "1536"))
OVERHEAD_CEILING_MB = float(os.environ.get("REPRO_BENCH_OOC_OVERHEAD_MB", "512"))
N_ITEMS = 150
SEED = 13
MINSUP = 0.005
BODY = 2
PARTITION_SIZE = 16_384
OOC_OVERHEAD_CEILING = 1.5
REFRESH_SPEEDUP_FLOOR = 3.0

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the out-of-core backend needs numpy"
)


@pytest.fixture(scope="module")
def workload():
    # +10% extra transactions for the refresh gate, drawn from the same
    # generator stream so the grown database is one coherent dataset.
    dataset = build_dataset(
        dataset_i_config(
            n_transactions=N_TRANSACTIONS + N_TRANSACTIONS // 10,
            n_items=N_ITEMS,
            seed=SEED,
        )
    )
    moa = MOAHierarchy(
        catalog=dataset.db.catalog,
        hierarchy=dataset.hierarchy,
        use_moa=True,
    )
    return dataset.db, moa, SavingMOA()


def _config(backend: str) -> MinerConfig:
    return MinerConfig(
        min_support=MINSUP,
        max_body_size=BODY,
        backend=backend,
        partition_size=PARTITION_SIZE,
    )


def _result_signature(result):
    """Everything a MiningResult asserts equality on, bit-for-bit."""
    return (
        [
            (
                scored.rule.order,
                tuple(sorted(g.describe() for g in scored.rule.body)),
                scored.rule.head.describe(),
                scored.stats.n_matched,
                scored.stats.n_hits,
                scored.stats.rule_profit,
            )
            for scored in result.all_rules
        ],
        result.body_tid_masks,
        result.body_ids_by_order,
        result.frequent_body_count,
        result.minsup_count,
    )


def _bench_json_path() -> str:
    return os.environ.get("REPRO_BENCH_OOC_JSON", "BENCH_mining_ooc.json")


def _merge_report(section: str, payload: dict) -> None:
    path = _bench_json_path()
    existing = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing.setdefault("mining_ooc", {})[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)


def test_perf_ooc_parity_with_dense(workload):
    """Gate 1: ooc ≡ dense bit-for-bit, within the wall-clock ceiling."""
    db, moa, profit_model = workload
    base = db.subset(range(N_TRANSACTIONS))

    started = time.perf_counter()
    dense = mine_rules(base, moa, profit_model, _config("dense"))
    dense_s = time.perf_counter() - started

    started = time.perf_counter()
    ooc = mine_rules(base, moa, profit_model, _config("ooc"))
    ooc_s = time.perf_counter() - started

    assert _result_signature(ooc) == _result_signature(dense)
    ratio = ooc_s / dense_s
    _merge_report(
        "parity",
        {
            "n_transactions": N_TRANSACTIONS,
            "n_rules": len(dense.all_rules),
            "dense_s": dense_s,
            "ooc_s": ooc_s,
            "ratio": ratio,
            "ceiling": OOC_OVERHEAD_CEILING,
            "identical_results": True,
        },
    )
    print(
        f"\nooc parity over {N_TRANSACTIONS} transactions "
        f"({len(dense.all_rules)} rules): dense {dense_s:.2f}s, "
        f"ooc {ooc_s:.2f}s -> {ratio:.2f}x "
        f"(ceiling {OOC_OVERHEAD_CEILING}x), results identical"
    )
    assert ratio <= OOC_OVERHEAD_CEILING, (
        f"out-of-core mine {ratio:.2f}x over dense, above the "
        f"{OOC_OVERHEAD_CEILING}x ceiling"
    )


def test_perf_ooc_refresh_speedup(workload, tmp_path):
    """Gate 3: +10% refresh beats the from-scratch re-mine ≥ the floor."""
    db, moa, profit_model = workload
    transactions = list(db)
    base, extra = transactions[:N_TRANSACTIONS], transactions[N_TRANSACTIONS:]
    config = _config("ooc")

    store = ChunkedTransactionStore.build(
        tmp_path / "grow",
        base,
        moa,
        profit_model,
        partition_size=PARTITION_SIZE,
    )
    mine_store(store, config)

    started = time.perf_counter()
    refreshed = refresh_store(store, extra, config)
    refresh_s = time.perf_counter() - started

    # The from-scratch baseline pays what a user without refresh pays:
    # re-ingesting the grown database and mining it in full.
    started = time.perf_counter()
    full_store = ChunkedTransactionStore.build(
        tmp_path / "full",
        transactions,
        moa,
        profit_model,
        partition_size=PARTITION_SIZE,
    )
    full = mine_store(full_store, config)
    remine_s = time.perf_counter() - started

    assert _result_signature(refreshed) == _result_signature(full)
    speedup = remine_s / refresh_s
    _merge_report(
        "refresh",
        {
            "n_base": len(base),
            "n_appended": len(extra),
            "refresh_s": refresh_s,
            "remine_s": remine_s,
            "speedup": speedup,
            "floor": REFRESH_SPEEDUP_FLOOR,
            "identical_results": True,
        },
    )
    print(
        f"\nrefresh +{len(extra)} transactions onto {len(base)}: "
        f"refresh {refresh_s:.2f}s vs re-mine {remine_s:.2f}s -> "
        f"{speedup:.2f}x (floor {REFRESH_SPEEDUP_FLOOR}x), "
        f"results identical"
    )
    assert speedup >= REFRESH_SPEEDUP_FLOOR, (
        f"refresh only {speedup:.2f}x faster than re-mining, below the "
        f"{REFRESH_SPEEDUP_FLOOR}x floor"
    )


_LARGE_SNIPPET = """
import json, os, resource, sys, tempfile, time

from repro.core.engine.store import ChunkedTransactionStore
from repro.core.mining import MinerConfig
from repro.core.moa import MOAHierarchy
from repro.core.partition import mine_store
from repro.core.profit import SavingMOA
from repro.data.datasets import (
    dataset_catalog,
    dataset_hierarchy,
    dataset_i_config,
    iter_dataset_transactions,
)

n = int(os.environ["OOC_BENCH_N"])
resident_mb = float(os.environ["OOC_BENCH_RESIDENT_MB"])
root = os.environ["OOC_BENCH_ROOT"]

config = dataset_i_config(n_transactions=n, n_items=150, seed=13)
catalog = dataset_catalog(config)
moa = MOAHierarchy(
    catalog=catalog, hierarchy=dataset_hierarchy(config, catalog), use_moa=True
)

t0 = time.perf_counter()
store = ChunkedTransactionStore.build(
    root,
    iter_dataset_transactions(config, catalog),
    moa,
    SavingMOA(),
    partition_size=65536,
    max_resident_mb=resident_mb,
)
build_s = time.perf_counter() - t0

t0 = time.perf_counter()
result = mine_store(
    store, MinerConfig(min_support=0.005, max_body_size=2, backend="ooc")
)
mine_s = time.perf_counter() - t0

stats = store.stats()
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
# The result carries one n-bit tid-mask per distinct emitted body (the
# masks are shared objects, so dedupe by identity before sizing them).
n_distinct_masks = len({id(m) for m in result.body_tid_masks.values()})
mask_bytes = n_distinct_masks * ((store.n + 7) // 8)
print(json.dumps({
    "n_transactions": store.n,
    "n_partitions": stats["n_partitions"],
    "spilled_bytes": stats["spilled_bytes"],
    "resident_bytes": stats["resident_bytes"],
    "resident_budget_bytes": stats["resident_budget_bytes"],
    "n_rules": len(result.all_rules),
    "n_distinct_masks": n_distinct_masks,
    "result_masks_mb": mask_bytes / (1024.0 * 1024.0),
    "build_s": build_s,
    "mine_s": mine_s,
    "peak_rss_mb": peak_kb / 1024.0,
}))
"""


def test_perf_ooc_bounded_memory(tmp_path):
    """Gate 2: a multi-million-transaction mine stays under the RSS cap."""
    outcome = run_isolated(
        _LARGE_SNIPPET,
        env={
            "OOC_BENCH_N": str(N_LARGE),
            "OOC_BENCH_RESIDENT_MB": str(RESIDENT_MB),
            "OOC_BENCH_ROOT": str(tmp_path / "large"),
        },
    )
    overhead_mb = outcome["peak_rss_mb"] - outcome["result_masks_mb"]
    _merge_report(
        "bounded_memory",
        {
            **outcome,
            "overhead_mb": overhead_mb,
            "overhead_ceiling_mb": OVERHEAD_CEILING_MB,
            "rss_ceiling_mb": RSS_CEILING_MB,
            "resident_budget_mb": RESIDENT_MB,
        },
    )
    print(
        f"\nout-of-core mine over {outcome['n_transactions']} transactions "
        f"({outcome['n_partitions']} partitions, "
        f"{outcome['spilled_bytes']} bytes spilled, "
        f"{outcome['n_rules']} rules): build {outcome['build_s']:.1f}s, "
        f"mine {outcome['mine_s']:.1f}s, peak RSS "
        f"{outcome['peak_rss_mb']:.0f} MB (ceiling {RSS_CEILING_MB:.0f} MB), "
        f"of which {outcome['result_masks_mb']:.0f} MB is the result's "
        f"{outcome['n_distinct_masks']} tid-masks -> "
        f"{overhead_mb:.0f} MB overhead (ceiling {OVERHEAD_CEILING_MB:.0f} MB)"
    )
    assert outcome["n_transactions"] == N_LARGE
    assert outcome["resident_bytes"] <= outcome["resident_budget_bytes"]
    assert outcome["peak_rss_mb"] <= RSS_CEILING_MB, (
        f"peak RSS {outcome['peak_rss_mb']:.0f} MB exceeds the "
        f"{RSS_CEILING_MB:.0f} MB ceiling"
    )
    assert overhead_mb <= OVERHEAD_CEILING_MB, (
        f"peak RSS beyond the result's own tid-masks is "
        f"{overhead_mb:.0f} MB, above the {OVERHEAD_CEILING_MB:.0f} MB "
        f"ceiling — working memory is no longer bounded"
    )
