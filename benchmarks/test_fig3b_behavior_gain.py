"""Figure 3(b): gain under quantity-increase behaviors, dataset I."""

from __future__ import annotations

from repro.eval.experiments import behavior_gain
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig3b_behavior_gain(benchmark):
    scale = bench_scale()
    gains = run_once(benchmark, lambda: behavior_gain("I", scale))
    systems = sorted(next(iter(gains.values())))
    rows = [
        [label, *(per.get(system) for system in systems)]
        for label, per in gains.items()
    ]
    print_panel("3b", format_table(["behavior", *systems], rows))

    x2 = gains["(x=2,y=30%)"]["PROF+MOA"]
    x3 = gains["(x=3,y=40%)"]["PROF+MOA"]
    assert x3 > x2  # the stronger setting lifts the gain further
    # The behavior model must lift PROF+MOA above its conservative gain.
    from repro.eval.experiments import gain_and_size_sweep

    plain_by_support = dict(gain_and_size_sweep("I", scale).series("gain")["PROF+MOA"])
    plain = plain_by_support.get(scale.spot_support)
    if plain is not None:
        assert x2 > plain
