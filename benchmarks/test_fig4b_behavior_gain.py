"""Figure 4(b): gain under quantity-increase behaviors, dataset II."""

from __future__ import annotations

from repro.eval.experiments import behavior_gain
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig4b_behavior_gain(benchmark):
    scale = bench_scale()
    gains = run_once(benchmark, lambda: behavior_gain("II", scale))
    systems = sorted(next(iter(gains.values())))
    rows = [
        [label, *(per.get(system) for system in systems)]
        for label, per in gains.items()
    ]
    print_panel("4b", format_table(["behavior", *systems], rows))

    x2 = gains["(x=2,y=30%)"]["PROF+MOA"]
    x3 = gains["(x=3,y=40%)"]["PROF+MOA"]
    assert x3 > x2
    # every MOA recommender benefits from more generous behavior
    for system in systems:
        assert gains["(x=3,y=40%)"][system] >= gains["(x=2,y=30%)"][system] - 0.02
