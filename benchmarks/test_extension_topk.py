"""Extension: multi-pair recommendation (paper Section 2).

"To apply to ... recommendation of several pairs of target item and
promotion code, ... we select several rules for each recommendation."
This benchmark sweeps the number of offered pairs k and reports gain and
hit rate; both must be monotone in k.
"""

from __future__ import annotations

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.eval.experiments import get_dataset
from repro.eval.metrics import evaluate_top_k
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once

K_VALUES = (1, 2, 3, 5)


def test_extension_top_k_recommendation(benchmark):
    scale = bench_scale()
    dataset = get_dataset("I", scale)
    split = int(len(dataset.db) * 0.8)
    train = dataset.db.subset(range(split))
    test = dataset.db.subset(range(split, len(dataset.db)))

    def experiment():
        miner = ProfitMiner(
            dataset.hierarchy,
            config=ProfitMinerConfig(
                mining=MinerConfig(
                    min_support=scale.spot_support,
                    max_body_size=scale.max_body_size,
                ),
            ),
        ).fit(train)
        recommender = miner.require_fitted_recommender()
        return {
            k: evaluate_top_k(recommender, test, dataset.hierarchy, k)
            for k in K_VALUES
        }

    results = run_once(benchmark, experiment)
    rows = [[k, result.gain, result.hit_rate] for k, result in results.items()]
    print_panel(
        "extension-top-k", format_table(["k", "gain", "hit rate"], rows)
    )

    gains = [results[k].gain for k in K_VALUES]
    hits = [results[k].hit_rate for k in K_VALUES]
    assert gains == sorted(gains)
    assert hits == sorted(hits)
