"""Ablation: basket↔target signal strength (generator substitution check).

DESIGN.md documents that the paper's basket↔target association mechanism
is unspecified and that we inject it through pattern windows with a
controllable ``signal_strength``.  This ablation sweeps that knob: at 0
the data carries no mineable structure and every recommender must fall to
the best-constant floor; the gain should rise monotonically-ish with the
signal.  It validates that the reproduced headline numbers measure the
*recommender*, not an artifact of the generator.
"""

from __future__ import annotations

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.datasets import build_dataset, dataset_i_config
from repro.eval.metrics import evaluate
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once

SIGNALS = (0.0, 0.5, 0.95)


def test_ablation_signal_strength(benchmark):
    scale = bench_scale()

    def experiment():
        rows = {}
        for signal in SIGNALS:
            dataset = build_dataset(
                dataset_i_config(
                    n_transactions=scale.n_transactions,
                    n_items=scale.n_items,
                    n_patterns=scale.n_patterns,
                    signal_strength=signal,
                    seed=scale.seed,
                )
            )
            split = int(len(dataset.db) * 0.8)
            miner = ProfitMiner(
                dataset.hierarchy,
                config=ProfitMinerConfig(
                    mining=MinerConfig(
                        min_support=scale.spot_support,
                        max_body_size=scale.max_body_size,
                    ),
                ),
            ).fit(dataset.db.subset(range(split)))
            result = evaluate(
                miner,
                dataset.db.subset(range(split, len(dataset.db))),
                dataset.hierarchy,
            )
            rows[signal] = (result, miner.model_size)
        return rows

    results = run_once(benchmark, experiment)
    table = [
        [signal, result.gain, result.hit_rate, size]
        for signal, (result, size) in results.items()
    ]
    print_panel(
        "ablation-signal",
        format_table(["signal", "gain", "hit rate", "rules"], table),
    )

    gains = [results[s][0].gain for s in SIGNALS]
    # Strong signal must clearly beat no signal; the middle sits between
    # (loosely — fold noise allows small inversions at one end only).
    assert gains[-1] > gains[0] + 0.1
    assert gains[1] >= gains[0] - 0.05
