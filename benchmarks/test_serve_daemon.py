"""Daemon serving gate: sustained throughput and tail latency over HTTP.

Boots the real serving daemon (``repro.serve``) in-process on the
standard synthetic model — the same 1500-transaction dataset-I world the
cold-start benchmark uses, served as the cut-optimal artifact ``fit
--save-model`` would produce — and drives it through real sockets with
``http.client``:

* **throughput** — client-batched ``POST /recommend_batch`` requests
  cycling through every training basket until ``N_THROUGHPUT_BASKETS``
  have been served; the gate requires ≥ ``THROUGHPUT_FLOOR`` baskets/sec
  sustained over the whole window (socket framing, JSON parsing and
  serving included).
* **latency** — sequential single-basket ``POST /recommend`` requests
  through the micro-batching queue; the gate requires p99 ≤
  ``P99_CEILING_MS`` per request.

Numbers land in ``BENCH_serve_daemon.json`` for the CI artifact.
"""

from __future__ import annotations

import http.client
import itertools
import json
import os
import time

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.datasets import build_dataset, dataset_i_config
from repro.data.model_io import save_model
from repro.serve import BackgroundDaemon, ServeConfig

MINSUP = 0.01
BODY = 2
BATCH_SIZE = 100
N_THROUGHPUT_BASKETS = int(
    os.environ.get("REPRO_BENCH_DAEMON_BASKETS", 40_000)
)
N_LATENCY_REQUESTS = int(os.environ.get("REPRO_BENCH_DAEMON_SINGLES", 500))
THROUGHPUT_FLOOR = 2_000.0  # baskets per second, sustained
P99_CEILING_MS = 10.0


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        dataset_i_config(n_transactions=1500, n_items=150, seed=11)
    )


@pytest.fixture(scope="module")
def model_path(dataset, tmp_path_factory):
    miner = ProfitMiner(
        dataset.hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=MINSUP, max_body_size=BODY)
        ),
    ).fit(dataset.db)
    path = tmp_path_factory.mktemp("daemon_model") / "model.json"
    save_model(miner.require_fitted_recommender(), path)
    return str(path)


@pytest.fixture(scope="module")
def payloads(dataset):
    return [
        [
            {"item": s.item_id, "promo": s.promo_code, "quantity": s.quantity}
            for s in t.nontarget_sales
        ]
        for t in dataset.db.transactions
    ]


def _bench_json_path() -> str:
    return os.environ.get(
        "REPRO_BENCH_SERVE_DAEMON_JSON", "BENCH_serve_daemon.json"
    )


def _write_report(section: dict) -> None:
    path = _bench_json_path()
    existing = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing.setdefault("serve_daemon", {}).update(section)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)


def test_perf_daemon_throughput_and_p99(model_path, payloads):
    """One daemon, two gates: batch throughput then single-request p99."""
    config = ServeConfig(port=0, max_batch_size=64, max_linger_ms=1.0)
    with BackgroundDaemon(model_path, config) as daemon:
        port = daemon.port
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            # -- throughput: client-batched requests, pre-encoded once --
            batches = [
                json.dumps({"baskets": payloads[i : i + BATCH_SIZE]})
                for i in range(0, len(payloads), BATCH_SIZE)
            ]
            batch_sizes = [
                len(payloads[i : i + BATCH_SIZE])
                for i in range(0, len(payloads), BATCH_SIZE)
            ]
            # Warm the daemon's basket memo before timing the window.
            for body in batches:
                conn.request("POST", "/recommend_batch", body=body)
                response = conn.getresponse()
                assert response.status == 200
                response.read()
            served = 0
            cycle = itertools.cycle(zip(batches, batch_sizes))
            started = time.perf_counter()
            while served < N_THROUGHPUT_BASKETS:
                body, size = next(cycle)
                conn.request("POST", "/recommend_batch", body=body)
                response = conn.getresponse()
                assert response.status == 200
                payload = json.loads(response.read())
                assert len(payload["recommendations"]) == size
                served += size
            throughput_window_s = time.perf_counter() - started
            throughput = served / throughput_window_s

            # -- latency: sequential singles through the micro-batcher --
            singles = [
                json.dumps({"basket": basket})
                for basket in payloads[:N_LATENCY_REQUESTS]
            ]
            latencies_ms = []
            for body in singles:
                t0 = time.perf_counter()
                conn.request("POST", "/recommend", body=body)
                response = conn.getresponse()
                assert response.status == 200
                response.read()
                latencies_ms.append((time.perf_counter() - t0) * 1000.0)
        finally:
            conn.close()

        status_conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            status_conn.request("GET", "/stats")
            stats = json.loads(status_conn.getresponse().read())
        finally:
            status_conn.close()

    latencies_ms.sort()
    p50 = latencies_ms[len(latencies_ms) // 2]
    p99 = latencies_ms[min(len(latencies_ms) - 1, int(len(latencies_ms) * 0.99))]

    _write_report(
        {
            "workload": {
                "n_transactions": 1500,
                "n_items": 150,
                "seed": 11,
                "min_support": MINSUP,
                "max_body_size": BODY,
                "n_rules": stats["n_rules"],
                "batch_size": BATCH_SIZE,
                "n_throughput_baskets": served,
                "n_latency_requests": len(latencies_ms),
            },
            "throughput_baskets_per_s": throughput,
            "throughput_window_s": throughput_window_s,
            "throughput_floor": THROUGHPUT_FLOOR,
            "p50_ms": p50,
            "p99_ms": p99,
            "p99_ceiling_ms": P99_CEILING_MS,
            "daemon_counters": stats["counters"],
        }
    )
    print(
        f"\ndaemon over {stats['n_rules']} rules: "
        f"{throughput:,.0f} baskets/s sustained over "
        f"{throughput_window_s:.2f}s (floor {THROUGHPUT_FLOOR:,.0f}), "
        f"single-request p50 {p50:.2f}ms / p99 {p99:.2f}ms "
        f"(ceiling {P99_CEILING_MS:.0f}ms)"
    )
    assert throughput >= THROUGHPUT_FLOOR, (
        f"sustained throughput {throughput:,.0f} baskets/s below the "
        f"{THROUGHPUT_FLOOR:,.0f} floor"
    )
    assert p99 <= P99_CEILING_MS, (
        f"single-request p99 {p99:.2f}ms above the {P99_CEILING_MS}ms ceiling"
    )
