"""Extension: gain vs training-set size (scalability shape).

Rules need support to exist: at a quarter of the training data, the miner
holds fewer, coarser rules; its gain must recover as data grows.  kNN's
curve is plotted alongside — instance-based methods also improve with
data, so the gap at full size is the honest comparison.
"""

from __future__ import annotations

from repro.eval.experiments import learning_curve
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once

FRACTIONS = (0.25, 0.5, 1.0)


def test_extension_learning_curve(benchmark):
    scale = bench_scale()
    curve = run_once(
        benchmark, lambda: learning_curve("I", scale, fractions=FRACTIONS)
    )
    systems = sorted(next(iter(curve.values())))
    rows = [
        [fraction, *(curve[fraction][s] for s in systems)]
        for fraction in sorted(curve)
    ]
    print_panel(
        "extension-learning-curve",
        format_table(["train fraction", *systems], rows),
    )

    prof = [curve[f]["PROF+MOA"] for f in sorted(curve)]
    # More data must not hurt substantially (noise tolerance 0.05).
    assert prof[-1] >= prof[0] - 0.05
