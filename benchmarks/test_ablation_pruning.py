"""Ablation: the cut-optimal phase (Section 4) on vs off.

DESIGN.md calls out the cut-optimal pruning as the paper's key departure
from plain rule mining.  This benchmark compares the final recommender
against the *initial* MPF recommender (all mined rules, no pruning) on
dataset I, reporting gain, hit rate and model size.
"""

from __future__ import annotations

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.pruning import PruneConfig
from repro.eval.experiments import get_dataset
from repro.eval.metrics import evaluate
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once


def test_ablation_cut_optimal_pruning(benchmark):
    scale = bench_scale()
    dataset = get_dataset("I", scale)
    split = int(len(dataset.db) * 0.8)
    train = dataset.db.subset(range(split))
    test = dataset.db.subset(range(split, len(dataset.db)))

    def experiment():
        results = {}
        for label, prune in (("cut-optimal", True), ("unpruned", False)):
            miner = ProfitMiner(
                dataset.hierarchy,
                config=ProfitMinerConfig(
                    mining=MinerConfig(
                        min_support=scale.spot_support,
                        max_body_size=scale.max_body_size,
                    ),
                    pruning=PruneConfig(enabled=prune),
                ),
            ).fit(train)
            results[label] = (
                evaluate(miner, test, dataset.hierarchy),
                miner.model_size,
            )
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [label, result.gain, result.hit_rate, size]
        for label, (result, size) in results.items()
    ]
    print_panel(
        "ablation-pruning",
        format_table(["variant", "gain", "hit rate", "rules"], rows),
    )

    cut_result, cut_size = results["cut-optimal"]
    raw_result, raw_size = results["unpruned"]
    # Interpretability: the cut is far smaller (paper: "several hundred
    # times" at full scale) without giving up the gain.
    assert cut_size < raw_size / 5
    assert cut_result.gain > raw_result.gain - 0.1
