"""Single-mine scale benchmark: dense chunked-bitset kernel vs big-int.

After PR 2/3 the orchestration and serving paths amortize everything
they can across fits; what remains is the cost of *one* mine on a large
database, where the big-int backend intersects tid-masks one candidate
at a time.  The dense kernel (``repro.core.engine.kernel``) evaluates
whole candidate batches as vectorized AND + popcount over chunked
``uint64`` matrices.  This benchmark times a single ``mine_rules`` call
per backend on a ~100k-transaction workload (the ROADMAP's
production-scale target) and asserts

* the dense backend is at least ``MINING_SPEEDUP_FLOOR`` times faster
  (median over rounds, both backends back to back on the same machine),
* the two :class:`~repro.core.mining.MiningResult`\\ s are 100%
  identical — every rule, stat, order, tid-mask and the default rule,
  compared bit-for-bit, not approximately.

Each timed run gets its *own* :class:`TransactionIndex` (built untimed):
the index's body/emit caches would otherwise let the second backend
replay the first one's discovery and poison the comparison.

Scale knobs (for the CI perf-smoke job, which runs reduced):

* ``REPRO_BENCH_MINING_TXNS`` — transactions (default 100 000),
* ``REPRO_BENCH_MINING_ROUNDS`` — timing rounds per backend (default 1),
* ``REPRO_BENCH_MINING_JSON`` — report path (default
  ``BENCH_mining_scale.json``, merged like the other BENCH files).
"""

from __future__ import annotations

import json
import os
import statistics
import time

import pytest

from repro.core.engine.kernel import HAVE_NUMPY
from repro.core.mining import MinerConfig, TransactionIndex, mine_rules
from repro.core.moa import MOAHierarchy
from repro.core.profit import SavingMOA
from repro.data.datasets import build_dataset, dataset_i_config

N_TRANSACTIONS = int(os.environ.get("REPRO_BENCH_MINING_TXNS", "100000"))
N_ROUNDS = int(os.environ.get("REPRO_BENCH_MINING_ROUNDS", "1"))
N_ITEMS = 150
SEED = 13
MINSUP = 0.005
BODY = 2
MINING_SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def workload():
    dataset = build_dataset(
        dataset_i_config(
            n_transactions=N_TRANSACTIONS, n_items=N_ITEMS, seed=SEED
        )
    )
    moa = MOAHierarchy(
        catalog=dataset.db.catalog,
        hierarchy=dataset.hierarchy,
        use_moa=True,
    )
    return dataset.db, moa, SavingMOA()


def _mine_seconds(db, moa, profit_model, backend: str):
    """One timed mine on a fresh index (index build stays untimed)."""
    config = MinerConfig(
        min_support=MINSUP, max_body_size=BODY, backend=backend
    )
    index = TransactionIndex(db=db, moa=moa, profit_model=profit_model)
    started = time.perf_counter()
    result = mine_rules(db, moa, profit_model, config, index=index)
    return time.perf_counter() - started, result


def _result_signature(result):
    """Everything a MiningResult asserts equality on, bit-for-bit."""
    return (
        [
            (
                scored.rule.order,
                tuple(sorted(g.describe() for g in scored.rule.body)),
                scored.rule.head.describe(),
                scored.stats.n_matched,
                scored.stats.n_hits,
                scored.stats.rule_profit,
            )
            for scored in result.all_rules
        ],
        result.body_tid_masks,
        result.body_ids_by_order,
        result.frequent_body_count,
        result.minsup_count,
    )


def _bench_json_path() -> str:
    return os.environ.get(
        "REPRO_BENCH_MINING_JSON", "BENCH_mining_scale.json"
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="dense kernel needs numpy")
def test_perf_mining_scale(workload):
    """Single-mine speedup: dense kernel vs big-int, identical results."""
    db, moa, profit_model = workload

    dense_runs = [
        _mine_seconds(db, moa, profit_model, "dense")
        for _ in range(N_ROUNDS)
    ]
    bigint_runs = [
        _mine_seconds(db, moa, profit_model, "bigint")
        for _ in range(N_ROUNDS)
    ]

    # Identity before speed: the results must match in full, bit-for-bit.
    dense_result = dense_runs[0][1]
    bigint_result = bigint_runs[0][1]
    assert _result_signature(dense_result) == _result_signature(bigint_result)
    n_rules = len(dense_result.all_rules)

    dense_rounds = [seconds for seconds, _ in dense_runs]
    bigint_rounds = [seconds for seconds, _ in bigint_runs]
    median_dense = statistics.median(dense_rounds)
    median_bigint = statistics.median(bigint_rounds)
    speedup = median_bigint / median_dense

    report = {
        "mining_scale": {
            "workload": {
                "n_transactions": N_TRANSACTIONS,
                "n_items": N_ITEMS,
                "seed": SEED,
                "min_support": MINSUP,
                "max_body_size": BODY,
                "n_rules": n_rules,
                "rounds": N_ROUNDS,
            },
            "bigint_rounds_s": bigint_rounds,
            "dense_rounds_s": dense_rounds,
            "median_bigint_s": median_bigint,
            "median_dense_s": median_dense,
            "speedup": speedup,
            "floor": MINING_SPEEDUP_FLOOR,
            "identical_results": True,
        }
    }
    path = _bench_json_path()
    existing = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing.update(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)

    print(
        f"\nsingle mine over {N_TRANSACTIONS} transactions ({n_rules} "
        f"rules): dense median {median_dense:.2f}s vs big-int median "
        f"{median_bigint:.2f}s -> {speedup:.2f}x "
        f"(floor {MINING_SPEEDUP_FLOOR:.1f}x), results identical"
    )
    assert speedup >= MINING_SPEEDUP_FLOOR, (
        f"dense mining {speedup:.2f}x below the {MINING_SPEEDUP_FLOOR}x "
        f"floor (big-int {bigint_rounds}, dense {dense_rounds})"
    )
