"""Shared plumbing for the figure-reproduction benchmarks.

Each ``test_fig*`` benchmark regenerates the series behind one panel of the
paper's Figure 3 (dataset I) or Figure 4 (dataset II) and prints the rows,
so a benchmark run doubles as the experiment log recorded in
EXPERIMENTS.md.  Experiments are heavyweight, so every benchmark runs the
payload exactly once (``benchmark.pedantic`` with one round); the *timing*
numbers are the cost of reproducing the panel at the chosen scale.

Scale is controlled by ``REPRO_SCALE`` (tiny / small / medium / paper);
the default is ``small``, sized for a laptop.  Panels sharing a support
sweep reuse it through the process-level cache in
:mod:`repro.eval.experiments`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Any, Callable

from repro.eval.experiments import ExperimentScale, scale_from_env

__all__ = ["bench_scale", "run_once", "print_panel", "run_isolated"]

#: Paper-quoted reference points, used in the printed comparison.
PAPER_NOTES = {
    "3a": "paper: PROF+MOA reaches gain 0.76 at minsup 0.1%; best overall",
    "3b": "paper: PROF(x=3,y=40%) reaches gain 2.23 at minsup 0.1%",
    "3c": "paper: PROF+MOA and CONF+MOA hit ~95%",
    "3d": "paper: kNN ~100% at Low but <10% at High; PROF+MOA high everywhere",
    "3e": "paper: two-target profit distribution (Zipf 5:1, costs $2/$10)",
    "3f": "paper: rule count falls with minsup; pre-cut count is 100s× larger",
    "4a": "paper: same ordering as 3(a) despite the 1/40 random hit rate",
    "4b": "paper: behavior settings lift gain above 1",
    "4c": "paper: hit rates lower than dataset I (40 item/price pairs)",
    "4d": "paper: PROF+MOA profit-smart; others collapse at High",
    "4e": "paper: bell-shaped profit distribution (normal over 10 targets)",
    "4f": "paper: rule counts as in 3(f)",
}


def bench_scale() -> ExperimentScale:
    """The scale every benchmark in this session runs at."""
    return scale_from_env(default="small")


def run_once(benchmark: Any, fn: Callable[[], Any]) -> Any:
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_isolated(
    snippet: str, env: dict[str, str] | None = None, timeout: float = 3600.0
) -> dict:
    """Run ``snippet`` in a fresh Python subprocess; return its JSON result.

    The snippet must print one JSON object as its *last* stdout line
    (typically including its own ``resource.getrusage`` peak RSS).
    Memory-bounded benchmarks need this isolation: ``ru_maxrss`` is the
    process-*lifetime* peak, so a bounded-memory claim measured in the
    long-lived pytest process would inherit every earlier test's
    high-water mark.
    """
    proc_env = dict(os.environ)
    if env:
        proc_env.update(env)
    completed = subprocess.run(
        [sys.executable, "-c", snippet],
        env=proc_env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"isolated benchmark subprocess failed "
            f"(exit {completed.returncode}):\n{completed.stderr}"
        )
    last_line = completed.stdout.strip().splitlines()[-1]
    return json.loads(last_line)


def print_panel(panel: str, body: str) -> None:
    """Print one panel's reproduction and persist it to the panel log.

    pytest captures stdout, so the rows are also appended to
    ``benchmark_panels_<scale>.log`` in the working directory — the durable
    record EXPERIMENTS.md quotes.
    """
    scale = bench_scale().label
    text = "\n".join(
        filter(
            None,
            [
                "",
                f"=== Figure {panel} ({scale} scale) ===",
                PAPER_NOTES.get(panel, ""),
                body,
            ],
        )
    )
    print(text)
    log_path = os.environ.get(
        "REPRO_PANEL_LOG", f"benchmark_panels_{scale}.log"
    )
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(text + "\n")
