"""Figure 4(c): hit rate vs minimum support, six recommenders, dataset II."""

from __future__ import annotations

from repro.eval.experiments import gain_and_size_sweep
from repro.eval.reporting import format_series

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig4c_hit_rate(benchmark):
    scale = bench_scale()
    sweep = run_once(benchmark, lambda: gain_and_size_sweep("II", scale))
    series = sweep.series("hit_rate")
    print_panel("4c", format_series(series, y_label="hit rate"))

    lowest = min(scale.min_supports)
    hits = {system: dict(points)[lowest] for system, points in series.items()}
    # Ten targets × four prices: a random recommender would hit ~1/40;
    # every mined system must clear that bar by a wide margin.
    assert hits["PROF+MOA"] > 10 * (1 / 40)
    assert hits["CONF+MOA"] > hits["CONF-MOA"]
    assert hits["PROF+MOA"] > hits["PROF-MOA"]
    # MPI stays close to the floor on this dataset.
    assert hits["MPI"] < hits["PROF+MOA"]
