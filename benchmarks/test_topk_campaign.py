"""Top-k serving and campaign-planner benchmark gates.

Two claims of the portfolio layer are checked on a mined model over a
synthetic Dataset-I world:

1. **Batched top-k speed** — serving a repeated-traffic workload through
   :meth:`~repro.core.mpf.MPFRecommender.recommend_top_k_many` (compiled
   matching + the (basket, k) LRU memo) is at least
   ``TOPK_SPEEDUP_FLOOR``× faster than the naive per-call loop
   (``recommend_top_k(b, k, naive=True)`` per basket — the linear-scan
   reference), with bit-identical offer lists.
2. **Planner optimality** — the campaign planner's exact search matches
   an independent brute-force optimum computed straight off the
   ``what_if`` kernel (no planner code in the loop), the greedy sweep
   never beats exact and never exceeds its own certified upper bound,
   and budget / inventory constraints hold on the selected portfolio.

Workload size is env-tunable for CI smoke runs
(``REPRO_BENCH_TOPK_TXNS`` / ``_ITEMS`` / ``_BASKETS`` / ``_K`` /
``_MINSUP``); results land in ``BENCH_topk_campaign.json`` for the CI
artifact.
"""

from __future__ import annotations

import itertools
import json
import os
import time

import pytest

from repro.campaign import plan_campaign
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.datasets import build_dataset, dataset_i_config
from repro.whatif import what_if

N_TXNS = int(os.environ.get("REPRO_BENCH_TOPK_TXNS", "1200"))
N_ITEMS = int(os.environ.get("REPRO_BENCH_TOPK_ITEMS", "120"))
N_BASKETS = int(os.environ.get("REPRO_BENCH_TOPK_BASKETS", "8000"))
K = int(os.environ.get("REPRO_BENCH_TOPK_K", "3"))
MINSUP = float(os.environ.get("REPRO_BENCH_TOPK_MINSUP", "0.003"))
SEED = 7
ROUNDS = 3
#: Batched memoized top-k must beat the naive per-call loop by this much
#: on repeated traffic.
TOPK_SPEEDUP_FLOOR = 3.0
#: Brute-force verification enumerates portfolios up to this size.
PLAN_CAP = 2
#: Baskets fed to the planner gate (kept small: the brute-force
#: reference scores every basket × subset combination).
PLAN_BASKETS = 200


def _bench_json_path() -> str:
    return os.environ.get(
        "REPRO_BENCH_TOPK_JSON", "BENCH_topk_campaign.json"
    )


def _write_report(section: str, body: dict) -> None:
    path = _bench_json_path()
    existing = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing[section] = body
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        dataset_i_config(n_transactions=N_TXNS, n_items=N_ITEMS, seed=SEED)
    )


@pytest.fixture(scope="module")
def recommender(dataset):
    miner = ProfitMiner(
        dataset.hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=MINSUP, max_body_size=2)
        ),
    ).fit(dataset.db)
    return miner.require_fitted_recommender()


@pytest.fixture(scope="module")
def baskets(dataset):
    """Repeated traffic: N_BASKETS baskets cycled from the database."""
    transactions = itertools.cycle(dataset.db.transactions)
    return [next(transactions).nontarget_sales for _ in range(N_BASKETS)]


def test_gate_batched_topk_beats_per_call_loop(recommender, baskets):
    """Gate (a): memoized batch serving >= 3x the naive per-call loop."""
    # Parity first: the speed claim is only meaningful if both paths
    # produce the same ranked offers, pair for pair.
    batched = recommender.recommend_top_k_many(baskets, K)
    for basket, indexed in zip(baskets, batched):
        naive = recommender.recommend_top_k(basket, K, naive=True)
        assert [(p.item_id, p.promo_code) for p in indexed] == [
            (p.item_id, p.promo_code) for p in naive
        ], "indexed and naive top-k offers diverged"

    batched_s = naive_s = 0.0
    for _ in range(ROUNDS):
        recommender._topk_memo.clear()  # cold memo every round
        started = time.perf_counter()
        recommender.recommend_top_k_many(baskets, K)
        batched_s += time.perf_counter() - started
        started = time.perf_counter()
        for basket in baskets:
            recommender.recommend_top_k(basket, K, naive=True)
        naive_s += time.perf_counter() - started
    speedup = naive_s / batched_s if batched_s else float("inf")

    _write_report(
        "topk_serving",
        {
            "n_rules": recommender.model_size,
            "n_baskets": N_BASKETS,
            "k": K,
            "rounds": ROUNDS,
            "batched_s": batched_s,
            "naive_loop_s": naive_s,
            "speedup": speedup,
            "floor": TOPK_SPEEDUP_FLOOR,
            "identical_offers": True,
        },
    )
    print(
        f"\ntop-{K} over {N_BASKETS} baskets x {ROUNDS} rounds "
        f"({recommender.model_size} rules): batched {batched_s:.3f}s vs "
        f"naive loop {naive_s:.3f}s -> {speedup:.1f}x "
        f"(floor {TOPK_SPEEDUP_FLOOR:.0f}x)"
    )
    assert speedup >= TOPK_SPEEDUP_FLOOR, (
        f"batched top-k only {speedup:.1f}x faster than the per-call loop "
        f"(floor {TOPK_SPEEDUP_FLOOR}x)"
    )


def _brute_force_optimum(recommender, baskets, cap):
    """Independent reference: enumerate portfolios straight off what_if."""
    # what_if is deterministic per distinct basket, so scoring each
    # basket independently (no dedup) keeps the reference planner-free.
    per_basket = []
    pairs = set()
    for basket in baskets:
        scores = {}
        for option in what_if(recommender, basket):
            if option.expected_profit > 1e-9:
                scores[(option.item_id, option.promo_code)] = (
                    option.expected_profit
                )
                pairs.add((option.item_id, option.promo_code))
        per_basket.append(scores)
    best = 0.0
    for r in range(cap + 1):
        for combo in itertools.combinations(sorted(pairs), r):
            value = sum(
                max((scores[p] for p in combo if p in scores), default=0.0)
                for scores in per_basket
            )
            best = max(best, value)
    return best, len(pairs)


def test_gate_planner_matches_brute_force(recommender, dataset):
    """Gate (b): exact == brute force; greedy certified; constraints hold."""
    baskets = [
        t.nontarget_sales for t in dataset.db.transactions[:PLAN_BASKETS]
    ]
    started = time.perf_counter()
    reference, n_pairs = _brute_force_optimum(recommender, baskets, PLAN_CAP)
    brute_s = time.perf_counter() - started

    started = time.perf_counter()
    exact = plan_campaign(
        recommender, baskets, max_offers=PLAN_CAP, method="exact"
    )
    exact_s = time.perf_counter() - started
    greedy = plan_campaign(
        recommender, baskets, max_offers=PLAN_CAP, method="greedy"
    )
    auto = plan_campaign(recommender, baskets, max_offers=PLAN_CAP)

    assert exact.expected_profit == pytest.approx(reference), (
        f"exact planner {exact.expected_profit} != brute force {reference}"
    )
    assert auto.expected_profit == pytest.approx(reference)
    assert greedy.expected_profit <= exact.expected_profit + 1e-9
    assert exact.expected_profit <= greedy.profit_upper_bound + 1e-9
    assert greedy.expected_profit <= greedy.profit_upper_bound + 1e-9
    assert len(exact.offers) <= PLAN_CAP

    # Constraints hold on the selected portfolio: a one-offer budget and
    # a halved inventory cap on the top item both bind.
    budgeted = plan_campaign(
        recommender, baskets, budget=1.0, offer_cost=1.0
    )
    assert len(budgeted.offers) <= 1
    top_item = exact.offers[0].item_id
    demand = sum(
        offer.expected_units
        for offer in exact.offers
        if offer.item_id == top_item
    )
    squeezed = plan_campaign(
        recommender,
        baskets,
        max_offers=PLAN_CAP,
        inventory={top_item: demand / 2},
    )
    squeezed_demand = sum(
        offer.expected_units
        for offer in squeezed.offers
        if offer.item_id == top_item
    )
    assert squeezed_demand <= demand / 2 + 1e-9
    assert squeezed.expected_profit <= exact.expected_profit + 1e-9

    _write_report(
        "campaign_planner",
        {
            "n_baskets": PLAN_BASKETS,
            "n_candidates": n_pairs,
            "cap": PLAN_CAP,
            "brute_force_profit": reference,
            "exact_profit": exact.expected_profit,
            "greedy_profit": greedy.expected_profit,
            "greedy_upper_bound": greedy.profit_upper_bound,
            "auto_method": auto.method,
            "brute_force_s": brute_s,
            "exact_s": exact_s,
            "budget_respected": True,
            "inventory_respected": True,
        },
    )
    print(
        f"\ncampaign planner over {PLAN_BASKETS} baskets "
        f"({n_pairs} candidates, cap {PLAN_CAP}): exact "
        f"${exact.expected_profit:.2f} == brute force ${reference:.2f} "
        f"({exact_s:.3f}s vs {brute_s:.3f}s); greedy "
        f"${greedy.expected_profit:.2f} <= bound "
        f"${greedy.profit_upper_bound:.2f}"
    )
