"""Extension: the Section 1.1 "quick solution" vs integrated profit mining.

"Pushing the profit objective into model building is a significant win
over the afterthought strategy" [MS96].  This benchmark measures it: a
decision tree predicting the most probable pair, the same tree with
profit-afterthought re-ranking, and PROF+MOA, all on shared folds with a
paired significance check.
"""

from __future__ import annotations

from repro.eval.cross_validation import kfold_indices
from repro.eval.experiments import get_dataset
from repro.eval.harness import eval_config_for_system, paper_recommenders
from repro.eval.cross_validation import cross_validate
from repro.eval.reporting import format_table
from repro.eval.stats import compare_gains

from benchmarks._common import bench_scale, print_panel, run_once

SYSTEMS = ("PROF+MOA", "DT", "DT(profit)")


def test_afterthought_vs_integrated_profit(benchmark):
    scale = bench_scale()
    dataset = get_dataset("I", scale)
    splits = kfold_indices(len(dataset.db), k=scale.k_folds, seed=scale.seed)
    factories = paper_recommenders(
        dataset.hierarchy,
        scale.spot_support,
        max_body_size=scale.max_body_size,
        systems=SYSTEMS,
    )

    def experiment():
        return {
            system: cross_validate(
                factory,
                dataset.db,
                dataset.hierarchy,
                eval_config_for_system(None, system),
                splits=splits,
            )
            for system, factory in factories.items()
        }

    results = run_once(benchmark, experiment)
    rows = [
        [system, cv.gain, cv.hit_rate] for system, cv in results.items()
    ]
    comparison = compare_gains(results["PROF+MOA"], results["DT(profit)"])
    print_panel(
        "baseline-decision-tree",
        format_table(["system", "gain", "hit rate"], rows)
        + "\n"
        + comparison.describe(),
    )

    # The afterthought must not beat integrated profit mining.
    assert results["PROF+MOA"].gain >= results["DT(profit)"].gain - 0.02
    assert comparison.mean_diff >= -0.02
