"""Figure 4(f): number of rules vs minimum support, dataset II."""

from __future__ import annotations

from repro.eval.experiments import gain_and_size_sweep
from repro.eval.reporting import format_series

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig4f_rule_count(benchmark):
    scale = bench_scale()
    sweep = run_once(benchmark, lambda: gain_and_size_sweep("II", scale))
    series = sweep.series("model_size")
    print_panel("4f", format_series(series, y_label="number of rules"))

    prof = [size for _, size in series["PROF+MOA"]]
    assert prof[0] >= prof[-1]  # falls as minimum support rises
    assert all(size >= 1 for size in prof)
    assert all(size is None for _, size in series["kNN"])
