"""Figure 4(a): gain vs minimum support, six recommenders, dataset II."""

from __future__ import annotations

from repro.eval.experiments import gain_and_size_sweep
from repro.eval.reporting import format_series

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig4a_gain(benchmark):
    scale = bench_scale()
    sweep = run_once(benchmark, lambda: gain_and_size_sweep("II", scale))
    series = sweep.series("gain")
    print_panel("4a", format_series(series, y_label="gain"))

    lowest = min(scale.min_supports)
    gains = {system: dict(points)[lowest] for system, points in series.items()}
    # "The result is consistent with that of dataset I."
    assert gains["PROF+MOA"] == max(gains.values())
    assert gains["PROF+MOA"] > gains["PROF-MOA"]
    assert gains["CONF+MOA"] > gains["CONF-MOA"]
    # MPI cannot cope with 40 item/price pairs.
    assert gains["MPI"] < gains["PROF+MOA"]
