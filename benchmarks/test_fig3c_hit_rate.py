"""Figure 3(c): hit rate vs minimum support, six recommenders, dataset I."""

from __future__ import annotations

from repro.eval.experiments import gain_and_size_sweep
from repro.eval.reporting import format_series

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig3c_hit_rate(benchmark):
    scale = bench_scale()
    sweep = run_once(benchmark, lambda: gain_and_size_sweep("I", scale))
    series = sweep.series("hit_rate")
    print_panel("3c", format_series(series, y_label="hit rate"))

    lowest = min(scale.min_supports)
    hits = {system: dict(points)[lowest] for system, points in series.items()}
    # CONF+MOA maximizes hit rate by construction (the paper reports ~95%).
    assert hits["CONF+MOA"] == max(hits.values())
    assert hits["CONF+MOA"] > 0.8
    # MOA lifts the hit rate over the exact-match counterparts.
    assert hits["CONF+MOA"] > hits["CONF-MOA"]
    assert hits["PROF+MOA"] > hits["PROF-MOA"]
