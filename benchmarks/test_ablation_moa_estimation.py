"""Ablation: saving MOA vs buying MOA profit estimation (Section 3.1).

Both are conservative; buying MOA credits more whenever the recommended
price is strictly cheaper (the customer re-spends the same money).  The
paper notes "the gain for buying MOA will be higher if all target items
have non-negative profit" — verified here on dataset I.
"""

from __future__ import annotations

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.profit import BuyingMOA, SavingMOA
from repro.eval.experiments import get_dataset
from repro.eval.metrics import EvalConfig, evaluate
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once


def test_ablation_saving_vs_buying_moa(benchmark):
    scale = bench_scale()
    dataset = get_dataset("I", scale)
    split = int(len(dataset.db) * 0.8)
    train = dataset.db.subset(range(split))
    test = dataset.db.subset(range(split, len(dataset.db)))

    def experiment():
        results = {}
        for model in (SavingMOA(), BuyingMOA()):
            miner = ProfitMiner(
                dataset.hierarchy,
                profit_model=model,
                config=ProfitMinerConfig(
                    mining=MinerConfig(
                        min_support=scale.spot_support,
                        max_body_size=scale.max_body_size,
                    ),
                ),
            ).fit(train)
            results[model.name] = evaluate(
                miner, test, dataset.hierarchy, EvalConfig(profit_model=model)
            )
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [name, result.gain, result.hit_rate]
        for name, result in results.items()
    ]
    print_panel(
        "ablation-moa-estimation",
        format_table(["MOA assumption", "gain", "hit rate"], rows),
    )

    # All target items have positive profit, so buying MOA credits at least
    # as much per hit; its gain can exceed saving MOA's (and even 1).
    assert results["buying"].generated_profit >= results["saving"].generated_profit * 0.8
