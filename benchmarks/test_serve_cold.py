"""Cold-start serving benchmark: model load to first 1k recommendations.

A serving process that restores a persisted model pays a fixed startup
cost before the first recommendation leaves the building.  On the v1
format that cost includes re-deriving the whole engine: enumerating the
symbol universe, interning every rule body and rebuilding the inverted
postings.  The v2 format persists the compiled engine (symbol table +
postings), so :func:`~repro.data.model_io.load_model` hands back a
recommender whose index is ready.  This benchmark times the full cold
window — ``load_model`` through 1 000 served baskets — on both formats
for the *same* model and asserts the v2 path is at least
``SERVE_SPEEDUP_FLOOR`` times faster (median over rounds; both paths run
back to back on the same machine).  Timings land in
``BENCH_serve_cold.json`` for the CI artifact.

The model is the miner's *initial* (unpruned) recommender: thousands of
mined rules, the scale at which re-compiling on load actually hurts and
the honest worst case for a persisted artifact.
"""

from __future__ import annotations

import itertools
import json
import os
import statistics
import time

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.datasets import build_dataset, dataset_i_config
from repro.data.model_io import load_model, save_model

MINSUP = 0.005  # low support -> ~20k mined rules, a compile-bound cold start
BODY = 2
N_BASKETS = 1000
N_ROUNDS = 3
SERVE_SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        dataset_i_config(n_transactions=1500, n_items=150, seed=11)
    )


@pytest.fixture(scope="module")
def unpruned_recommender(dataset):
    miner = ProfitMiner(
        dataset.hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=MINSUP, max_body_size=BODY)
        ),
    ).fit(dataset.db)
    return miner.initial_recommender


@pytest.fixture(scope="module")
def baskets(dataset):
    transactions = itertools.cycle(dataset.db.transactions)
    return [next(transactions).nontarget_sales for _ in range(N_BASKETS)]


def _cold_serve_seconds(path, baskets) -> float:
    """One cold round: load the artifact, serve every basket."""
    started = time.perf_counter()
    recommender = load_model(path)
    recommendations = recommender.recommend_many(baskets)
    elapsed = time.perf_counter() - started
    assert len(recommendations) == len(baskets)
    return elapsed


def _bench_json_path() -> str:
    return os.environ.get("REPRO_BENCH_SERVE_JSON", "BENCH_serve_cold.json")


def test_perf_serve_cold_start(tmp_path, unpruned_recommender, baskets):
    """Cold start (load -> 1k recommendations): v2 engine vs v1 rebuild."""
    v1_path = tmp_path / "model_v1.json"
    v2_path = tmp_path / "model_v2.json"
    save_model(unpruned_recommender, v1_path, version=1)
    save_model(unpruned_recommender, v2_path, version=2)

    # Both paths must serve the same picks before any timing matters.
    v1_picks = load_model(v1_path).recommend_many(baskets)
    v2_picks = load_model(v2_path).recommend_many(baskets)
    assert [(p.item_id, p.promo_code) for p in v1_picks] == [
        (p.item_id, p.promo_code) for p in v2_picks
    ]

    v1_rounds = [_cold_serve_seconds(v1_path, baskets) for _ in range(N_ROUNDS)]
    v2_rounds = [_cold_serve_seconds(v2_path, baskets) for _ in range(N_ROUNDS)]

    median_v1 = statistics.median(v1_rounds)
    median_v2 = statistics.median(v2_rounds)
    speedup = median_v1 / median_v2

    report = {
        "serve_cold": {
            "workload": {
                "n_transactions": 1500,
                "n_items": 150,
                "seed": 11,
                "min_support": MINSUP,
                "max_body_size": BODY,
                "n_rules": unpruned_recommender.model_size,
                "n_baskets": N_BASKETS,
                "rounds": N_ROUNDS,
            },
            "v1_rounds_s": v1_rounds,
            "v2_rounds_s": v2_rounds,
            "median_v1_s": median_v1,
            "median_v2_s": median_v2,
            "speedup": speedup,
            "floor": SERVE_SPEEDUP_FLOOR,
            "identical_picks": True,
        }
    }
    path = _bench_json_path()
    existing = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing.update(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)

    print(
        f"\ncold start over {unpruned_recommender.model_size} rules: "
        f"v2 median {median_v2:.3f}s vs v1 median {median_v1:.3f}s -> "
        f"{speedup:.2f}x (floor {SERVE_SPEEDUP_FLOOR:.1f}x), "
        f"{N_BASKETS}/{N_BASKETS} picks identical"
    )
    assert speedup >= SERVE_SPEEDUP_FLOOR, (
        f"v2 cold start {speedup:.2f}x below the {SERVE_SPEEDUP_FLOOR}x "
        f"floor (v1 {v1_rounds}, v2 {v2_rounds})"
    )
