"""Ablation: the pessimistic confidence level CF (Section 4.2).

C4.5's default CF = 0.25 governs how strongly low-coverage rules are
discounted.  Sweeping CF shows the pruning knob's effect on model size and
gain; smaller CF prunes harder.
"""

from __future__ import annotations

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.pruning import PruneConfig
from repro.eval.experiments import get_dataset
from repro.eval.metrics import evaluate
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once

CF_LEVELS = (0.05, 0.25, 0.45)


def test_ablation_cf_sweep(benchmark):
    scale = bench_scale()
    dataset = get_dataset("I", scale)
    split = int(len(dataset.db) * 0.8)
    train = dataset.db.subset(range(split))
    test = dataset.db.subset(range(split, len(dataset.db)))

    def experiment():
        rows = {}
        for cf in CF_LEVELS:
            miner = ProfitMiner(
                dataset.hierarchy,
                config=ProfitMinerConfig(
                    mining=MinerConfig(
                        min_support=scale.spot_support,
                        max_body_size=scale.max_body_size,
                    ),
                    pruning=PruneConfig(cf=cf),
                ),
            ).fit(train)
            rows[cf] = (evaluate(miner, test, dataset.hierarchy), miner.model_size)
        return rows

    results = run_once(benchmark, experiment)
    table = [
        [cf, result.gain, result.hit_rate, size]
        for cf, (result, size) in results.items()
    ]
    print_panel(
        "ablation-cf", format_table(["CF", "gain", "hit rate", "rules"], table)
    )

    for cf, (result, size) in results.items():
        assert size >= 1
        assert 0 <= result.gain <= 1.0 + 1e-9
