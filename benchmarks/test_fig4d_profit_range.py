"""Figure 4(d): hit rate by profit range (Low/Medium/High), dataset II."""

from __future__ import annotations

from repro.eval.experiments import profit_range_hit_rates
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig4d_profit_range(benchmark):
    scale = bench_scale()
    ranges = run_once(benchmark, lambda: profit_range_hit_rates("II", scale))
    rows = [
        [system, *(rate for _, rate, _ in triples)]
        for system, triples in ranges.items()
    ]
    print_panel("4d", format_table(["system", "Low", "Medium", "High"], rows))

    by_system = {
        system: {label: rate for label, rate, _ in triples}
        for system, triples in ranges.items()
    }
    assert by_system["PROF+MOA"]["High"] == max(
        rates["High"] for rates in by_system.values()
    )
    # The exact-match systems lose most of the High range.
    assert by_system["PROF-MOA"]["High"] < by_system["PROF+MOA"]["High"]
    assert by_system["CONF-MOA"]["High"] < by_system["PROF+MOA"]["High"]
