"""Section 5.3's kNN profit post-processing comparison.

"We also modified kNN to recommend the item/price of the most profit in
the k nearest neighbors. ... For dataset I, the gain increases by about
2%, and for dataset II, the gain decreases by about 5%.  Thus, the
post-processing does not improve much."
"""

from __future__ import annotations

from repro.eval.experiments import knn_postprocessing_delta
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once


def test_knn_postprocessing(benchmark):
    scale = bench_scale()

    def experiment():
        return {
            which: knn_postprocessing_delta(which, scale)
            for which in ("I", "II")
        }

    gains = run_once(benchmark, experiment)
    rows = [
        [f"dataset {which}", per["kNN"], per["kNN(profit)"]]
        for which, per in gains.items()
    ]
    print_panel(
        "knn-postprocessing",
        format_table(["dataset", "kNN", "kNN(profit)"], rows),
    )

    # The paper's conclusion: profit as an afterthought moves the needle by
    # only a few percent either way — far from PROF+MOA's integrated gains.
    for which, per in gains.items():
        assert abs(per["kNN"] - per["kNN(profit)"]) < 0.25, which
