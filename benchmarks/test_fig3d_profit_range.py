"""Figure 3(d): hit rate by profit range (Low/Medium/High), dataset I."""

from __future__ import annotations

from repro.eval.experiments import profit_range_hit_rates
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig3d_profit_range(benchmark):
    scale = bench_scale()
    ranges = run_once(benchmark, lambda: profit_range_hit_rates("I", scale))
    rows = [
        [system, *(rate for _, rate, _ in triples)]
        for system, triples in ranges.items()
    ]
    print_panel("3d", format_table(["system", "Low", "Medium", "High"], rows))

    by_system = {
        system: {label: rate for label, rate, _ in triples}
        for system, triples in ranges.items()
    }
    # "Profit smart": PROF+MOA keeps a high hit rate in the High range and
    # tops every other system there.
    assert by_system["PROF+MOA"]["High"] == max(
        rates["High"] for rates in by_system.values()
    )
    assert by_system["PROF+MOA"]["High"] > 0.7
    # CONF-MOA and PROF-MOA fall away at High (exact-match handicap).
    assert by_system["CONF-MOA"]["High"] < by_system["PROF+MOA"]["High"]
