"""Extension: multi-packing promotions (dataset III — Example 1 at scale).

The paper's synthetic evaluation uses a single packing per item; its
motivating Egg/Milk examples do not.  Dataset III gives every target two
incomparable ≺-chains (singles and 4-packs at a unit discount) so MOA must
reason about a genuine partial order.  Expected shape: PROF+MOA learns
each segment's item, *mode* and profitable price rung; the exact-match
variant loses the upward-dispersed half of every chain.
"""

from __future__ import annotations

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.packs import PacksConfig, make_dataset_packs
from repro.eval.metrics import EvalConfig, evaluate
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once


def test_extension_multi_packing(benchmark):
    scale = bench_scale()
    dataset = make_dataset_packs(
        PacksConfig(
            n_transactions=scale.n_transactions,
            n_items=scale.n_items,
            seed=scale.seed,
        )
    )
    split = int(len(dataset.db) * 0.8)
    train = dataset.db.subset(range(split))
    test = dataset.db.subset(range(split, len(dataset.db)))

    def experiment():
        results = {}
        for use_moa in (True, False):
            miner = ProfitMiner(
                dataset.hierarchy,
                config=ProfitMinerConfig(
                    mining=MinerConfig(
                        min_support=scale.spot_support,
                        max_body_size=scale.max_body_size,
                    ),
                    use_moa=use_moa,
                ),
            ).fit(train)
            results[miner.name] = evaluate(
                miner, test, dataset.hierarchy, EvalConfig(moa_hit_test=use_moa)
            )
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [name, result.gain, result.hit_rate]
        for name, result in results.items()
    ]
    bulk_hits = [
        outcome
        for outcome in results["PROF+MOA"].outcomes
        if outcome.hit and outcome.recommendation.promo_code.startswith("B")
    ]
    body = format_table(["system", "gain", "hit rate"], rows)
    body += f"\nbulk-chain hits by PROF+MOA: {len(bulk_hits)}"
    print_panel("extension-packs", body)

    assert results["PROF+MOA"].gain > results["PROF-MOA"].gain
    # The recommender must actually use the bulk chain for bulk segments.
    assert bulk_hits
