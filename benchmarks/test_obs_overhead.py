"""Observability overhead gate: disabled tracing must stay under 2%.

The ``repro.obs`` instrumentation is disabled by default; every
touchpoint then costs one ``ContextVar.get`` returning ``None`` (plus a
truth test).  This benchmark enforces the ISSUE's <2% no-op overhead
budget with a *model-based* gate that is robust to timer noise:

* time a large batch of no-op recording calls with tracing off, giving
  the per-touchpoint disabled cost;
* run one traced mine and read ``Trace.events`` — the number of
  recording calls the workload actually makes, which equals the number
  of disabled-path ``ContextVar.get``\\ s the same workload pays when
  tracing is off;
* assert ``per_call_cost x touchpoints < 2%`` of the untraced mine's
  median wall time.

Directly diffing on/off medians would gate on run-to-run noise that
dwarfs the nanoseconds under test; the model multiplies a stable
micro-measurement by an exact count instead.  The measured on/off
medians are still reported (informatively) in the JSON.

The benchmark also asserts the tentpole's correctness invariant: the
traced and untraced mines return bit-identical
:class:`~repro.core.mining.MiningResult`\\ s (same signature the
mining-scale benchmark compares).

Scale knobs (for the CI perf-smoke job, which runs reduced):

* ``REPRO_BENCH_OBS_TXNS`` — transactions (default 20 000),
* ``REPRO_BENCH_OBS_ROUNDS`` — timing rounds per mode (default 3),
* ``REPRO_BENCH_OBS_CALLS`` — no-op calls timed (default 1 000 000),
* ``REPRO_BENCH_OBS_JSON`` — report path (default
  ``BENCH_obs_overhead.json``, merged like the other BENCH files).
"""

from __future__ import annotations

import json
import os
import statistics
import time

import pytest

from repro.core.mining import MinerConfig, TransactionIndex, mine_rules
from repro.core.moa import MOAHierarchy
from repro.core.profit import SavingMOA
from repro.data.datasets import build_dataset, dataset_i_config
from repro.obs import trace as obs

N_TRANSACTIONS = int(os.environ.get("REPRO_BENCH_OBS_TXNS", "20000"))
N_ROUNDS = int(os.environ.get("REPRO_BENCH_OBS_ROUNDS", "3"))
N_CALLS = int(os.environ.get("REPRO_BENCH_OBS_CALLS", "1000000"))
N_ITEMS = 120
SEED = 13
MINSUP = 0.01
BODY = 2
OVERHEAD_CEILING = 0.02


@pytest.fixture(scope="module")
def workload():
    dataset = build_dataset(
        dataset_i_config(
            n_transactions=N_TRANSACTIONS, n_items=N_ITEMS, seed=SEED
        )
    )
    moa = MOAHierarchy(
        catalog=dataset.db.catalog,
        hierarchy=dataset.hierarchy,
        use_moa=True,
    )
    return dataset.db, moa, SavingMOA()


def _mine_seconds(db, moa, profit_model):
    """One timed mine on a fresh index (index build stays untimed)."""
    config = MinerConfig(min_support=MINSUP, max_body_size=BODY)
    index = TransactionIndex(db=db, moa=moa, profit_model=profit_model)
    started = time.perf_counter()
    result = mine_rules(db, moa, profit_model, config, index=index)
    return time.perf_counter() - started, result


def _result_signature(result):
    """Everything a MiningResult asserts equality on, bit-for-bit."""
    return (
        [
            (
                scored.rule.order,
                tuple(sorted(g.describe() for g in scored.rule.body)),
                scored.rule.head.describe(),
                scored.stats.n_matched,
                scored.stats.n_hits,
                scored.stats.rule_profit,
            )
            for scored in result.all_rules
        ],
        result.body_tid_masks,
        result.body_ids_by_order,
        result.frequent_body_count,
        result.minsup_count,
    )


def _noop_call_seconds(n_calls: int) -> float:
    """Per-call cost of a disabled recording call (``obs.count``)."""
    assert obs.current_trace() is None, "benchmark needs tracing off"
    count = obs.count
    started = time.perf_counter()
    for _ in range(n_calls):
        count("bench.noop", 1)
    return (time.perf_counter() - started) / n_calls


def _bench_json_path() -> str:
    return os.environ.get("REPRO_BENCH_OBS_JSON", "BENCH_obs_overhead.json")


def test_perf_obs_overhead(workload):
    """Disabled-tracing overhead model stays under the 2% ceiling."""
    db, moa, profit_model = workload

    off_runs = [_mine_seconds(db, moa, profit_model) for _ in range(N_ROUNDS)]
    on_runs = []
    traces = []
    for _ in range(N_ROUNDS):
        with obs.tracing("bench") as trace:
            on_runs.append(_mine_seconds(db, moa, profit_model))
        traces.append(trace)

    # Identity before speed: tracing must never change the results.
    off_signature = _result_signature(off_runs[0][1])
    for _, result in [*off_runs[1:], *on_runs]:
        assert _result_signature(result) == off_signature

    median_off = statistics.median(seconds for seconds, _ in off_runs)
    median_on = statistics.median(seconds for seconds, _ in on_runs)
    touchpoints = traces[0].events
    assert touchpoints > 0, "traced mine recorded no events"
    assert all(t.events == touchpoints for t in traces), (
        "touchpoint count must be deterministic across rounds"
    )

    per_call_s = _noop_call_seconds(N_CALLS)
    modeled_overhead = per_call_s * touchpoints / median_off

    report = {
        "obs_overhead": {
            "workload": {
                "n_transactions": N_TRANSACTIONS,
                "n_items": N_ITEMS,
                "seed": SEED,
                "min_support": MINSUP,
                "max_body_size": BODY,
                "rounds": N_ROUNDS,
                "noop_calls": N_CALLS,
            },
            "median_off_s": median_off,
            "median_on_s": median_on,
            "touchpoints": touchpoints,
            "noop_call_ns": per_call_s * 1e9,
            "modeled_overhead": modeled_overhead,
            "ceiling": OVERHEAD_CEILING,
            "identical_results": True,
        }
    }
    path = _bench_json_path()
    existing = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing.update(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)

    print(
        f"\nobs overhead: {touchpoints} touchpoints x "
        f"{per_call_s * 1e9:.0f}ns no-op = "
        f"{modeled_overhead * 100:.4f}% of the {median_off:.2f}s untraced "
        f"mine (ceiling {OVERHEAD_CEILING * 100:.0f}%); traced median "
        f"{median_on:.2f}s, results identical"
    )
    assert modeled_overhead < OVERHEAD_CEILING, (
        f"disabled-tracing overhead model {modeled_overhead * 100:.3f}% "
        f"exceeds the {OVERHEAD_CEILING * 100:.0f}% ceiling "
        f"({touchpoints} touchpoints at {per_call_s * 1e9:.0f}ns)"
    )
