"""Figure 3(e): profit distribution of target sales, dataset I."""

from __future__ import annotations

from repro.eval.experiments import get_dataset, profit_distribution
from repro.eval.reporting import format_histogram

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig3e_profit_distribution(benchmark):
    scale = bench_scale()
    hist = run_once(benchmark, lambda: profit_distribution("I", scale))
    print_panel("3e", format_histogram(hist, value_label="profit"))

    dataset = get_dataset("I", scale)
    assert sum(hist.values()) == len(dataset.db)
    # Two targets ($2 and $10 cost) on a 4-step 10% ladder: profits are
    # j·0.1·cost, i.e. {0.2,...,0.8} and {1,...,4}.
    t1_profits = {round(j * 0.2, 6) for j in range(1, 5)}
    t2_profits = {round(j * 1.0, 6) for j in range(1, 5)}
    assert set(hist) <= t1_profits | t2_profits
    # Zipf 5:1 — the cheap target carries most of the transactions.
    t1_mass = sum(n for p, n in hist.items() if p in t1_profits)
    t2_mass = sum(n for p, n in hist.items() if p in t2_profits)
    assert t1_mass > 2 * t2_mass
