"""Extension: the "more greedy estimation" of Section 3.1.

"A more greedy estimation could associate the increase of spending with
the relative favorability of P over P_t ... We will consider such
estimation in our experiments."  This benchmark builds PROF+MOA with the
behavior-adjusted profit model (expected quantity multiplier folded into
rule worth) and evaluates it under the matching stochastic behavior,
against the conservative saving-MOA build.
"""

from __future__ import annotations

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.profit import SavingMOA
from repro.eval.behavior import BehaviorAdjustedProfit, behavior_x3_y40
from repro.eval.experiments import get_dataset
from repro.eval.metrics import EvalConfig, evaluate
from repro.eval.reporting import format_table

from benchmarks._common import bench_scale, print_panel, run_once


def test_extension_greedy_estimation(benchmark):
    scale = bench_scale()
    dataset = get_dataset("I", scale)
    split = int(len(dataset.db) * 0.8)
    train = dataset.db.subset(range(split))
    test = dataset.db.subset(range(split, len(dataset.db)))
    behavior = behavior_x3_y40()
    eval_config = EvalConfig(behavior=behavior, seed=scale.seed)

    def experiment():
        results = {}
        for label, model in (
            ("conservative (saving MOA)", SavingMOA()),
            ("greedy (saving × E[x])", BehaviorAdjustedProfit(SavingMOA(), behavior)),
        ):
            miner = ProfitMiner(
                dataset.hierarchy,
                profit_model=model,
                config=ProfitMinerConfig(
                    mining=MinerConfig(
                        min_support=scale.spot_support,
                        max_body_size=scale.max_body_size,
                    ),
                ),
                name="PROF+MOA",
            ).fit(train)
            results[label] = evaluate(miner, test, dataset.hierarchy, eval_config)
        return results

    results = run_once(benchmark, experiment)
    rows = [
        [label, result.gain, result.hit_rate]
        for label, result in results.items()
    ]
    print_panel(
        "extension-greedy-estimation",
        format_table(["model building", "gain under (x=3,y=40%)", "hit rate"], rows),
    )

    for result in results.values():
        assert result.gain > 0
