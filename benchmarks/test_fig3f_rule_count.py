"""Figure 3(f): number of rules vs minimum support, dataset I."""

from __future__ import annotations

from repro.eval.experiments import gain_and_size_sweep
from repro.eval.reporting import format_series

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig3f_rule_count(benchmark):
    scale = bench_scale()
    sweep = run_once(benchmark, lambda: gain_and_size_sweep("I", scale))
    series = sweep.series("model_size")
    print_panel("3f", format_series(series, y_label="number of rules"))

    # kNN and MPI have no model, so no curve (the paper draws none either).
    assert all(size is None for _, size in series["kNN"])
    assert all(size is None for _, size in series["MPI"])
    # Minimum support has a major impact: rule counts fall as it rises.
    prof = [size for _, size in series["PROF+MOA"]]
    assert prof[0] >= prof[-1]
    assert all(size >= 1 for size in prof)
