"""Figure 3(a): gain vs minimum support, six recommenders, dataset I."""

from __future__ import annotations

from repro.eval.experiments import gain_and_size_sweep
from repro.eval.reporting import format_series

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig3a_gain(benchmark):
    scale = bench_scale()
    sweep = run_once(benchmark, lambda: gain_and_size_sweep("I", scale))
    series = sweep.series("gain")
    print_panel("3a", format_series(series, y_label="gain"))

    # Shape assertions: PROF+MOA leads, MOA beats its -MOA counterpart.
    lowest = min(scale.min_supports)
    gains = {system: dict(points)[lowest] for system, points in series.items()}
    # PROF+MOA leads; kNN can tie within sampling noise at reduced scales
    # (EXPERIMENTS.md), so allow a small tolerance against the field.
    assert gains["PROF+MOA"] >= max(gains.values()) - 0.02
    assert gains["PROF+MOA"] > gains["PROF-MOA"]
    assert gains["CONF+MOA"] > gains["CONF-MOA"]
    assert all(g <= 1.0 + 1e-9 for g in gains.values())  # saving MOA cap
