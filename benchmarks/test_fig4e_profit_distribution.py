"""Figure 4(e): profit distribution of target sales, dataset II."""

from __future__ import annotations

from repro.eval.experiments import get_dataset, profit_distribution
from repro.eval.reporting import format_histogram

from benchmarks._common import bench_scale, print_panel, run_once


def test_fig4e_profit_distribution(benchmark):
    scale = bench_scale()
    hist = run_once(benchmark, lambda: profit_distribution("II", scale))
    print_panel("4e", format_histogram(hist, value_label="profit"))

    dataset = get_dataset("II", scale)
    assert sum(hist.values()) == len(dataset.db)
    # Costs 10·i for i = 1…10 on a 4-step 10% ladder: profits j·i for
    # j = 1…4, i.e. integers 1…40 (with collisions).
    assert all(float(p).is_integer() and 1 <= p <= 40 for p in hist)
    # The normal frequency over items makes the mid-cost mass dominate the
    # extremes: compare total mass below profit 3 and above profit 20
    # against the middle band.
    low = sum(n for p, n in hist.items() if p < 3)
    high = sum(n for p, n in hist.items() if p > 20)
    middle = sum(n for p, n in hist.items() if 3 <= p <= 20)
    assert middle > low + high
