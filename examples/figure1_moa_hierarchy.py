"""Reproduce the paper's Figure 1: H and MOA(H) for Flake_Chicken/Sunchip.

Example 2 of the paper: non-target item Flake_Chicken (FC) has promotion
codes $3, $3.5 and $3.8; target item Sunchip has $3.8, $4.5 and $5.  The
script prints both hierarchies as Graphviz DOT (render with
``dot -Tpng``) and demonstrates the generalized sales of Definition 3.

Run with::

    python examples/figure1_moa_hierarchy.py
"""

from __future__ import annotations

from repro import ConceptHierarchy, Item, ItemCatalog, PromotionCode, Sale
from repro.core.hierarchy import to_dot
from repro.core.moa import MOAHierarchy, moa_to_dot


def build_world() -> MOAHierarchy:
    def code(price: float) -> PromotionCode:
        return PromotionCode(code=f"${price:g}", price=price, cost=price / 2)

    catalog = ItemCatalog.from_items(
        [
            Item("FC", (code(3.0), code(3.5), code(3.8))),
            Item("Sunchip", (code(3.8), code(4.5), code(5.0)), is_target=True),
        ]
    )
    hierarchy = ConceptHierarchy.for_catalog(
        catalog, {"Food": ["Meat"], "Meat": ["Chicken"], "Chicken": ["FC"]}
    )
    return MOAHierarchy(catalog, hierarchy)


def main() -> None:
    moa = build_world()

    print("--- Figure 1(a): the concept hierarchy H ---")
    print(to_dot(moa.hierarchy, name="H"))
    print()
    print("--- Figure 1(b): MOA(H) ---")
    print(moa_to_dot(moa))
    print()

    print("Generalized sales (Example 2):")
    for price in ("$3.8", "$3.5", "$3"):
        lifted = sorted(
            g.describe() for g in moa.generalizations_of_sale(Sale("FC", price))
        )
        print(f"  sale <FC, {price}, Q> generalizes to: {', '.join(lifted)}")

    print()
    print("Target heads (hits) per recorded Sunchip price:")
    for price in ("$5", "$4.5", "$3.8"):
        heads = sorted(
            g.describe()
            for g in moa.target_heads_of_sale(Sale("Sunchip", price))
        )
        print(f"  recorded at {price}: {', '.join(heads)}")


if __name__ == "__main__":
    main()
