"""Head-to-head comparison of all six recommenders from the paper.

Runs the cross-validated comparison of Section 5 on a reduced dataset I and
prints the gain / hit-rate / model-size table — a miniature of Figure 3.

Run with::

    python examples/compare_recommenders.py
"""

from __future__ import annotations

from repro.data import build_dataset, dataset_i_config
from repro.eval.harness import run_single_support
from repro.eval.reporting import format_table


def main() -> None:
    print("Building dataset I (1,500 transactions)...")
    dataset = build_dataset(
        dataset_i_config(n_transactions=1500, n_items=200, seed=5)
    )
    print("Cross-validating all six systems (3 folds, minsup 1%)...")
    results = run_single_support(dataset, min_support=0.01, k_folds=3)

    rows = []
    for system, cv in results.items():
        rows.append(
            [
                system,
                cv.gain,
                cv.hit_rate,
                int(cv.model_size) if cv.model_size is not None else None,
            ]
        )
    rows.sort(key=lambda row: -row[1])
    print()
    print(
        format_table(
            ["system", "gain", "hit rate", "rules"],
            rows,
            title="Paper Section 5 comparison (reduced scale)",
        )
    )
    print()
    print("Expected shape: PROF+MOA on top; +MOA beats -MOA for both PROF and CONF.")


if __name__ == "__main__":
    main()
