"""The paper's introductory Egg example (Section 1.1).

100 customers bought single packs of Egg at $1/pack and 100 customers
bought 4-pack packages at $3.2 (cost: $0.5/pack either way), for a recorded
profit of $170.  A model that repeats the past earns $170 again on the next
200 customers; profit mining notices the package price earns more per
customer and recommends it to everyone — $240 if the single-pack buyers
upgrade to a full package.

Run with::

    python examples/egg_promotion.py
"""

from __future__ import annotations

from repro import (
    BuyingMOA,
    ConceptHierarchy,
    Item,
    ItemCatalog,
    MinerConfig,
    ProfitMiner,
    ProfitMinerConfig,
    PromotionCode,
    Sale,
    Transaction,
    TransactionDB,
)


def build_world() -> tuple[TransactionDB, ConceptHierarchy]:
    catalog = ItemCatalog.from_items(
        [
            Item("Basket", (PromotionCode("B", 1.0, 0.0),)),
            Item(
                "Egg",
                (
                    PromotionCode("pack", price=1.0, cost=0.5, packing=1),
                    PromotionCode("package", price=3.2, cost=2.0, packing=4),
                ),
                is_target=True,
            ),
        ]
    )
    hierarchy = ConceptHierarchy.for_catalog(catalog)
    transactions = [
        Transaction(tid, (Sale("Basket", "B"),), Sale("Egg", "pack"))
        for tid in range(100)
    ] + [
        Transaction(100 + tid, (Sale("Basket", "B"),), Sale("Egg", "package"))
        for tid in range(100)
    ]
    return TransactionDB(catalog, transactions), hierarchy


def main() -> None:
    db, hierarchy = build_world()
    pack = db.catalog.promotion("Egg", "pack")
    package = db.catalog.promotion("Egg", "package")

    recorded = db.total_recorded_profit()
    print(f"Recorded profit of the past 200 transactions: ${recorded:.2f}")
    print(f"  100 × pack    profit ${pack.profit:.2f} = ${100 * pack.profit:.2f}")
    print(
        f"  100 × package profit ${package.profit:.2f} = "
        f"${100 * package.profit:.2f}"
    )
    print()

    miner = ProfitMiner(
        hierarchy,
        profit_model=BuyingMOA(),
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.05, max_body_size=1)
        ),
    ).fit(db)
    recommendation = miner.recommend([Sale("Basket", "B")])
    promo = db.catalog.promotion(recommendation.item_id, recommendation.promo_code)
    print(f"Profit mining recommends: {recommendation.item_id} at {promo.describe()}")
    print()

    projected = 200 * package.profit
    print(
        "If all 200 future customers take the package price, the projected "
        f"profit is 200 × ${package.profit:.2f} = ${projected:.2f} "
        f"(vs ${recorded:.2f} from repeating the past)."
    )
    assert recommendation.promo_code == "package"


if __name__ == "__main__":
    main()
