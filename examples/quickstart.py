"""Quickstart: mine a profit-maximizing recommender on synthetic data.

Run with::

    python examples/quickstart.py

Builds a small instance of the paper's dataset I, fits the cut-optimal
PROF+MOA recommender, evaluates it on a held-out slice, explains a few
recommendations — and prints the structured trace (stage timings,
mining counters, cache telemetry) the run produced under
:func:`repro.tracing`.
"""

from __future__ import annotations

from repro import (
    EvalConfig,
    MinerConfig,
    ProfitMiner,
    ProfitMinerConfig,
    evaluate,
    make_dataset_i,
    tracing,
)


def main() -> None:
    print("Building a small dataset I (2,000 transactions, 200 items)...")
    dataset = make_dataset_i(n_transactions=2000, n_items=200, seed=11)
    db, hierarchy = dataset.db, dataset.hierarchy

    split = int(len(db) * 0.8)
    train = db.subset(range(split))
    test = db.subset(range(split, len(db)))

    print("Fitting the PROF+MOA cut-optimal recommender...")
    with tracing("quickstart") as trace:
        miner = ProfitMiner(
            hierarchy,
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.01, max_body_size=2)
            ),
        ).fit(train)
        result = evaluate(miner, test, hierarchy, EvalConfig())
    print(miner.summary())
    print()
    print(
        f"Held-out evaluation: gain={result.gain:.3f} "
        f"hit rate={result.hit_rate:.3f} over {result.n} transactions"
    )
    print()

    print("Example recommendations:")
    for transaction in test.transactions[:3]:
        print()
        print(miner.explain(transaction.nontarget_sales))
        recorded = transaction.target_sale
        print(
            f"actually bought: {recorded.item_id} @ {recorded.promo_code} "
            f"(quantity {recorded.quantity:g})"
        )

    print()
    print("Where the time went (and what the caches did):")
    print(trace.summary())


if __name__ == "__main__":
    main()
