"""Cross-selling with a concept hierarchy — the paper's Perfume motivation.

The introduction's store manager knows {Perfume} → Lipstick (likely, cheap)
and {Perfume} → Diamond (rare, lucrative) and cannot tell which to push.
This example builds that world explicitly, with a Meat/Food concept branch
to show multi-level rule bodies, and lets the cut-optimal recommender make
the call — then prints the rules so the cross-selling plan is auditable
(the paper's interpretability requirement).

Run with::

    python examples/grocery_cross_sell.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConceptHierarchy,
    Item,
    ItemCatalog,
    MinerConfig,
    ProfitMiner,
    ProfitMinerConfig,
    PromotionCode,
    Sale,
    Transaction,
    TransactionDB,
)


def build_catalog() -> ItemCatalog:
    def ladder(base: float, cost: float) -> tuple[PromotionCode, ...]:
        return (
            PromotionCode("lo", base, cost),
            PromotionCode("hi", base * 1.25, cost),
        )

    return ItemCatalog.from_items(
        [
            Item("Perfume", ladder(30.0, 18.0)),
            Item("Flake_Chicken", ladder(6.0, 4.0)),
            Item("Ground_Beef", ladder(8.0, 5.0)),
            Item("Shampoo", ladder(5.0, 3.0)),
            Item("Bread", ladder(2.5, 1.2)),
            Item("Lipstick", ladder(12.0, 7.0), is_target=True),
            Item("Diamond", (PromotionCode("std", 400.0, 368.0),), is_target=True),
            Item("BBQ_Sauce", ladder(6.0, 2.8), is_target=True),
        ]
    )


def build_transactions(catalog: ItemCatalog, n: int = 900) -> TransactionDB:
    rng = np.random.default_rng(2002)
    transactions = []
    for tid in range(n):
        style = rng.random()
        if style < 0.45:  # perfume shoppers: mostly lipstick, sometimes diamond
            basket = (Sale("Perfume", rng.choice(["lo", "hi"])),)
            if rng.random() < 0.15:
                target = Sale("Diamond", "std")
            else:
                target = Sale("Lipstick", rng.choice(["lo", "hi"]))
        elif style < 0.85:  # meat shoppers: BBQ sauce, usually at full price
            meat = rng.choice(["Flake_Chicken", "Ground_Beef"])
            basket = (
                Sale(meat, rng.choice(["lo", "hi"])),
                Sale("Bread", "lo"),
            )
            target = Sale("BBQ_Sauce", "hi" if rng.random() < 0.8 else "lo")
        else:  # shampoo shoppers: budget lipstick
            basket = (Sale("Shampoo", rng.choice(["lo", "hi"])),)
            target = Sale("Lipstick", "lo")
        transactions.append(Transaction(tid, basket, target))
    return TransactionDB(catalog, transactions)


def main() -> None:
    catalog = build_catalog()
    hierarchy = ConceptHierarchy.for_catalog(
        catalog,
        {
            "Food": ["Meat", "Bread"],
            "Meat": ["Flake_Chicken", "Ground_Beef"],
            "Beauty": ["Perfume"],
        },
    )
    db = build_transactions(catalog)
    miner = ProfitMiner(
        hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.02, max_body_size=2)
        ),
    ).fit(db)
    print(miner.summary())
    print()

    print("The cross-selling plan (every rule of the final recommender):")
    for scored in miner.rules:
        print("  " + scored.describe())
    print()

    for basket in (
        [Sale("Perfume", "hi")],
        [Sale("Flake_Chicken", "lo"), Sale("Bread", "lo")],
        [Sale("Ground_Beef", "hi")],
        [Sale("Shampoo", "lo")],
    ):
        items = ", ".join(s.item_id for s in basket)
        rec = miner.recommend(basket)
        promo = catalog.promotion(rec.item_id, rec.promo_code)
        print(f"customer buying [{items}] -> {rec.item_id} at {promo.describe()}")

    print()
    print(
        "Note the Meat-level rule: the recommender generalized "
        "Flake_Chicken/Ground_Beef to the Meat concept instead of learning "
        "two item-level rules — Requirement 3's hierarchy search at work."
    )

    print()
    print("What-if decision surface for a perfume shopper:")
    from repro.whatif import what_if

    for option in what_if(
        miner.require_fitted_recommender(), [Sale("Perfume", "hi")]
    )[:4]:
        print("  " + option.describe())


if __name__ == "__main__":
    main()
