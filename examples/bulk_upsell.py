"""Bulk upsell on the multi-packing dataset (dataset III).

The paper's Example 1 gives 2%-Milk single packs and 4-packs — promotion
codes that are *incomparable* under favorability.  This example mines the
multi-packing dataset, shows the recommender choosing the right chain
(single vs bulk) and rung per customer segment, and round-trips the fitted
model through JSON persistence.

Run with::

    python examples/bulk_upsell.py
"""

from __future__ import annotations

import collections
import tempfile
from pathlib import Path

from repro import (
    BuyingMOA,
    EvalConfig,
    MinerConfig,
    ProfitMiner,
    ProfitMinerConfig,
    evaluate,
    load_model,
    save_model,
)
from repro.data.packs import PacksConfig, make_dataset_packs


def main() -> None:
    print("Building dataset III (multi-packing promotions)...")
    dataset = make_dataset_packs(
        PacksConfig(n_transactions=2000, n_items=200, seed=21)
    )
    split = int(len(dataset.db) * 0.8)
    train = dataset.db.subset(range(split))
    test = dataset.db.subset(range(split, len(dataset.db)))

    print("Fitting PROF+MOA with the buying-MOA profit model...")
    miner = ProfitMiner(
        dataset.hierarchy,
        profit_model=BuyingMOA(),
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.01, max_body_size=2)
        ),
    ).fit(train)
    print(miner.summary())
    print()

    result = evaluate(
        miner, test, dataset.hierarchy, EvalConfig(profit_model=BuyingMOA())
    )
    print(
        f"Held-out (buying MOA): gain={result.gain:.3f} "
        f"hit rate={result.hit_rate:.3f}"
    )

    by_chain = collections.Counter(
        "bulk" if o.recommendation.promo_code.startswith("B") else "single"
        for o in result.outcomes
    )
    print(f"Recommendations by chain: {dict(by_chain)}")
    print()

    print("Sample rules recommending the bulk chain:")
    shown = 0
    for scored in miner.rules:
        if scored.rule.head.promo and scored.rule.head.promo.startswith("B"):
            print("  " + scored.describe())
            shown += 1
            if shown == 5:
                break
    if not shown:
        print("  (none at this scale — increase n_transactions)")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.json"
        save_model(miner.require_fitted_recommender(), path)
        restored = load_model(path)
        basket = test[0].nontarget_sales
        assert restored.recommend(basket) == miner.recommend(basket)
        print(
            f"Model persisted to JSON ({path.stat().st_size} bytes) and "
            "restored; recommendations identical."
        )


if __name__ == "__main__":
    main()
